// Copyright (c) 2026 GARCIA reproduction authors.
// Dense row-major float matrix with a packed, cache-blocked GEMM.
//
// This is the storage + BLAS-lite layer underneath the autograd engine in
// src/nn. It deliberately stays small: storage, shape checks, GEMM (with
// transpose flags), and a handful of elementwise helpers. Anything with a
// gradient lives in nn::ops instead.

#ifndef GARCIA_CORE_MATRIX_H_
#define GARCIA_CORE_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "core/macros.h"

namespace garcia::core {

class Rng;

/// Row-major float matrix. A row vector is a 1xN matrix; an embedding table
/// is an NxD matrix whose i-th row is the vector of entity i.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from a nested initializer list: Matrix({{1,2},{3,4}}).
  Matrix(std::initializer_list<std::initializer_list<float>> rows);

  static Matrix Zeros(size_t rows, size_t cols) { return Matrix(rows, cols); }
  static Matrix Ones(size_t rows, size_t cols) {
    return Matrix(rows, cols, 1.0f);
  }
  static Matrix Identity(size_t n);

  /// I.i.d. N(mean, stddev) entries.
  static Matrix Randn(size_t rows, size_t cols, Rng* rng, float mean = 0.0f,
                      float stddev = 1.0f);

  /// Xavier/Glorot uniform init for a (fan_in=rows, fan_out=cols) weight.
  static Matrix Xavier(size_t rows, size_t cols, Rng* rng);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(size_t i, size_t j) {
    GARCIA_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  float at(size_t i, size_t j) const {
    GARCIA_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float* row(size_t i) {
    GARCIA_DCHECK(i < rows_);
    return data_.data() + i * cols_;
  }
  const float* row(size_t i) const {
    GARCIA_DCHECK(i < rows_);
    return data_.data() + i * cols_;
  }

  /// C = alpha * op(A) @ op(B) + beta * C. op(X) is X or X^T according to
  /// the transpose flags; transposed operands are packed panel-by-panel
  /// inside the kernel, never materialized whole. C must already have the
  /// result shape. Dispatches through the packed, cache-blocked kernel in
  /// the execution layer (core/kernels.h), so it runs thread-parallel
  /// (2-D-sharded over row blocks x column panels) under a ScopedExecution
  /// with a parallel context — bit-identical to the serial backend and to
  /// the naive triple loop for every transpose flag.
  static void Gemm(bool trans_a, bool trans_b, float alpha, const Matrix& a,
                   const Matrix& b, float beta, Matrix* c);

  /// Convenience: returns A @ B.
  static Matrix Matmul(const Matrix& a, const Matrix& b);

  /// this += other (same shape).
  void Add(const Matrix& other);
  /// this -= other (same shape).
  void Sub(const Matrix& other);
  /// this *= scalar.
  void Scale(float s);
  /// this = this ⊙ other (same shape).
  void Hadamard(const Matrix& other);
  /// Sets every entry to value.
  void Fill(float value);

  /// Sum of all entries.
  double Sum() const;
  /// Frobenius norm.
  double FrobeniusNorm() const;
  /// Max |entry|.
  float AbsMax() const;

  /// Copies row src of `from` into row dst of this (same cols).
  void CopyRowFrom(const Matrix& from, size_t src, size_t dst);

  /// True when shapes match and all entries differ by at most atol.
  bool AllClose(const Matrix& other, float atol = 1e-5f) const;

  /// Compact debug string ("Matrix(3x4)") with small matrices printed fully.
  std::string ToString() const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<float> data_;
};

}  // namespace garcia::core

#endif  // GARCIA_CORE_MATRIX_H_
