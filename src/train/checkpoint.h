// Copyright (c) 2026 GARCIA reproduction authors.
// Crash-safe training checkpoints (DESIGN.md §5h).
//
// A checkpoint is a sectioned, versioned container ("GCK1") holding
// everything a training loop needs to continue bit-identically to the run
// that wrote it: parameter tensors, Adam moments, every core::Rng stream
// position, the epoch/step counters, the mid-epoch batch-iterator
// position, and a fingerprint of the trajectory-relevant TrainConfig
// fields. Each section carries its own CRC-32 (core/crc32), so corruption
// is localized to a named section in the error message.
//
// Durability protocol: every generation is written with
// core::WriteFileAtomic (temp file + fsync + rename + directory fsync) to
// "checkpoint-<global_step>.gck" under the checkpoint directory, and the
// newest K generations are kept. A crash therefore leaves the directory
// with only intact generations plus, at worst, one ignorable ".tmp".
// Loading is corruption-aware anyway — torn bytes under a final name
// (e.g. disk-level corruption after the fsync) make LoadLatestCheckpoint
// fall back to the newest older generation that decodes cleanly, reporting
// the skipped ones.
//
// The resume contract is REPLAY: restoring a checkpoint puts the loop at
// the exact post-step state the snapshot captured, and because every
// stochastic draw flows through the serialized rng streams, the resumed
// trajectory replays the uninterrupted one bit for bit (the same contract
// the execution layer and sampler already keep — DESIGN.md §5d/§5e).
//
// Kill-point fault injection: CheckpointManager can be armed (tests only)
// to simulate a crash at a chosen step — before a write, mid-write with a
// torn final file, after a durable write, with a post-write bit flip, or
// between checkpoints — by throwing TrainingKilled. The crash-resume
// harness in tests/train_checkpoint_test.cc sweeps every class.

#ifndef GARCIA_TRAIN_CHECKPOINT_H_
#define GARCIA_TRAIN_CHECKPOINT_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/matrix.h"
#include "core/rng.h"
#include "core/status.h"

namespace garcia::train {

// ------------------------------------------------------------ kill points

/// Deterministic crash classes for the fault-injection harness. Each one
/// models a distinct relationship between the crash and the write
/// protocol; together they cover every instant a real kill can hit.
enum class KillPoint : int {
  kNone = 0,
  /// Crash after the snapshot but before any bytes reach disk.
  kBeforeWrite = 1,
  /// Crash mid-write that bypasses the atomic protocol and leaves a torn
  /// file under the FINAL generation name (models a non-atomic writer or
  /// post-rename media corruption — the case fallback must absorb).
  kMidWriteTruncate = 2,
  /// Crash immediately after the generation is durable.
  kAfterWrite = 3,
  /// The write completes but one bit of the final file is flipped before
  /// the crash (fsync'd garbage; the per-section CRC catches it).
  kPostWriteBitFlip = 4,
  /// Crash at a step where no checkpoint write is in flight.
  kBetweenCheckpoints = 5,
};
constexpr size_t kNumKillPoints = 6;

const char* KillPointName(KillPoint point);

/// Arms one simulated crash: `point` fires when the training loop finishes
/// global step `step` (1-based). kNone disarms.
struct CheckpointFaultPlan {
  KillPoint point = KillPoint::kNone;
  uint64_t step = 0;
};

/// Thrown by CheckpointManager when an armed kill-point fires. The harness
/// catches it, then constructs a fresh model over the same checkpoint
/// directory — exactly what a process restart would do.
struct TrainingKilled {
  KillPoint point = KillPoint::kNone;
  uint64_t step = 0;
};

// -------------------------------------------------------------- container

/// Everything needed to continue a training loop bit-identically.
struct TrainCheckpoint {
  /// models::TrainFingerprint of the run; a resume under a different
  /// fingerprint is rejected instead of silently diverging.
  uint64_t config_fingerprint = 0;

  // Loop position: the snapshot is taken AFTER the optimizer step, so
  // `step_in_epoch` counts completed steps of `epoch` and `global_step`
  // counts completed steps of the whole run (pretrain + finetune).
  uint32_t phase = 0;  // GARCIA: 0 = pretrain, 1 = finetune
  uint64_t epoch = 0;
  uint64_t step_in_epoch = 0;
  uint64_t global_step = 0;
  /// Model-defined scalars restored verbatim (e.g. GARCIA's loss probes).
  std::vector<float> diagnostics;

  /// Parameter values in the model's fixed CollectParameters order.
  std::vector<core::Matrix> params;

  // Adam state; moment shapes must match `params` one-to-one.
  int64_t adam_t = 0;
  std::vector<core::Matrix> adam_m;
  std::vector<core::Matrix> adam_v;

  /// Every rng stream of the loop, in a model-fixed order (e.g. GARCIA:
  /// {train rng, sampler rng}). Restoring them is what makes the resumed
  /// batch/negative/sampler draws replay exactly.
  std::vector<core::RngState> rng_streams;

  // Mid-epoch BatchIterator position (finetune phases only).
  bool has_iterator = false;
  uint64_t iterator_cursor = 0;
  std::vector<uint32_t> iterator_order;
};

/// Container section ids (each serialized with its own CRC-32).
enum class CheckpointSectionId : uint32_t {
  kConfig = 1,
  kProgress = 2,
  kParams = 3,
  kOptimizer = 4,
  kRng = 5,
  kIterator = 6,
};

const char* CheckpointSectionName(CheckpointSectionId id);

/// Payload span of one section inside encoded checkpoint bytes
/// (introspection for the corruption-matrix tests and tooling).
struct CheckpointSectionSpan {
  uint32_t id = 0;
  size_t payload_offset = 0;
  size_t payload_size = 0;
};

/// Serializes to the container format. Deterministic: equal checkpoints
/// encode to equal bytes.
std::string EncodeCheckpoint(const TrainCheckpoint& checkpoint);

/// Parses and validates container bytes: magic/version, section CRCs,
/// section completeness, shape agreement between params and moments, and
/// every count/size bound. `origin` names the source in error messages.
core::Result<TrainCheckpoint> DecodeCheckpoint(const std::string& bytes,
                                               const std::string& origin);

/// Section layout of encoded bytes (header must be intact).
core::Result<std::vector<CheckpointSectionSpan>> ListCheckpointSections(
    const std::string& bytes);

/// Atomic write of one checkpoint file (temp + fsync + rename).
core::Status SaveCheckpoint(const std::string& path,
                            const TrainCheckpoint& checkpoint);

/// Reads and decodes one checkpoint file.
core::Result<TrainCheckpoint> LoadCheckpoint(const std::string& path);

/// Hard cap on a checkpoint file (refuses bogus multi-GiB artifacts).
constexpr uint64_t kMaxCheckpointBytes = 1ull << 34;  // 16 GiB

// ------------------------------------------------------------ generations

/// "checkpoint-00000042.gck" for global step 42.
std::string CheckpointFileName(uint64_t global_step);

/// Global steps of the generations in `dir`, ascending. A missing
/// directory is an empty list, not an error. Ignores ".tmp" leftovers and
/// foreign files.
std::vector<uint64_t> ListCheckpointSteps(const std::string& dir);

/// A successfully resumed generation plus what was skipped to reach it.
struct ResumeState {
  TrainCheckpoint checkpoint;
  uint64_t loaded_step = 0;
  /// One human-readable line per newer generation that failed to decode
  /// ("checkpoint-…gck: <status>"); callers log these.
  std::vector<std::string> skipped;
};

/// Newest generation in `dir` that decodes cleanly.
///  * kNotFound        — no generations exist (fresh start).
///  * kInvalidArgument — the newest intact generation carries a different
///                       config fingerprint; resume is refused because the
///                       replayed trajectory would silently diverge.
///  * kIoError         — generations exist but every one is corrupt (the
///                       message lists each failure).
core::Result<ResumeState> LoadLatestCheckpoint(const std::string& dir,
                                               uint64_t expected_fingerprint);

// ---------------------------------------------------------------- manager

struct CheckpointOptions {
  /// Generation directory; empty disables checkpointing entirely.
  std::string dir;
  /// Write a generation every N completed optimizer steps; 0 disables.
  uint64_t every_steps = 0;
  /// Generations kept on disk (older pruned after each write); 0 = all.
  uint64_t keep = 2;
  /// Expected config fingerprint (models::TrainFingerprint of the run).
  uint64_t fingerprint = 0;
  /// Test-only simulated crash; kNone in production.
  CheckpointFaultPlan fault;
};

/// Bridges one training loop to the checkpoint store: resume-at-start,
/// cadenced atomic writes, keep-K pruning, and kill-point injection.
class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointOptions options);

  bool enabled() const {
    return !options_.dir.empty() && options_.every_steps > 0;
  }

  /// Resumes from the newest intact generation. Returns nullopt for a
  /// fresh start (checkpointing disabled, or no generations yet); logs a
  /// warning for each torn generation that was skipped. Aborts with a
  /// descriptive message when resume must be refused (fingerprint
  /// mismatch, or every generation corrupt) — continuing would either
  /// diverge silently or overwrite state the operator may want to salvage.
  /// Also removes stray ".tmp" files from an interrupted write.
  std::optional<TrainCheckpoint> Resume();

  /// Call after every completed optimizer step (`global_step` is 1-based
  /// and counts all phases). Fires the armed kill-point, and on cadence
  /// boundaries materializes `snapshot` and writes a generation. A failed
  /// write is logged and training continues — a full disk should cost
  /// durability, not the run.
  void AtStepEnd(uint64_t global_step,
                 const std::function<TrainCheckpoint()>& snapshot);

  uint64_t writes() const { return writes_; }

 private:
  void WriteGeneration(uint64_t global_step, const TrainCheckpoint& ck);
  void Prune();
  [[noreturn]] void Kill(uint64_t global_step);

  CheckpointOptions options_;
  uint64_t writes_ = 0;
};

}  // namespace garcia::train

#endif  // GARCIA_TRAIN_CHECKPOINT_H_
