#include "train/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/crc32.h"
#include "core/fileio.h"
#include "core/logging.h"

namespace garcia::train {

namespace fs = std::filesystem;

using core::Matrix;
using core::Result;
using core::RngState;
using core::Status;

namespace {

constexpr char kMagic[4] = {'G', 'C', 'K', '1'};
constexpr uint32_t kContainerVersion = 1;

// Count/shape bounds: generous for any realistic run, tight enough that a
// corrupt header cannot drive a pathological allocation before its CRC is
// even computed.
constexpr uint64_t kMaxTensors = 1ull << 20;
constexpr uint64_t kMaxRows = 1ull << 32;
constexpr uint64_t kMaxCols = 1ull << 16;
constexpr uint64_t kMaxRngStreams = 64;
constexpr uint64_t kMaxDiagnostics = 1ull << 16;
constexpr uint64_t kMaxSections = 64;

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

void AppendMatrix(std::string* out, const Matrix& m) {
  AppendPod(out, static_cast<uint64_t>(m.rows()));
  AppendPod(out, static_cast<uint64_t>(m.cols()));
  out->append(reinterpret_cast<const char*>(m.data()),
              m.size() * sizeof(float));
}

/// Bounds-checked sequential reader over one section payload.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Pod(T* out) {
    if (pos_ + sizeof(T) > size_) return false;
    std::memcpy(out, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool Bytes(void* out, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

Status SectionError(const std::string& origin, CheckpointSectionId id,
                    const std::string& what) {
  return Status::InvalidArgument(origin + ": " + CheckpointSectionName(id) +
                                 " section " + what);
}

bool ReadMatrix(Reader* r, Matrix* out) {
  uint64_t rows = 0, cols = 0;
  if (!r->Pod(&rows) || !r->Pod(&cols)) return false;
  if (rows > kMaxRows || cols > kMaxCols) return false;
  // rows*cols*4 cannot overflow: bounded by 2^32 * 2^16 * 4 = 2^50.
  const uint64_t bytes = rows * cols * sizeof(float);
  if (bytes > r->remaining()) return false;
  Matrix m(rows, cols);
  if (!r->Bytes(m.data(), bytes)) return false;
  *out = std::move(m);
  return true;
}

std::string EncodeSection(CheckpointSectionId id, const std::string& payload) {
  std::string out;
  AppendPod(&out, static_cast<uint32_t>(id));
  AppendPod(&out, static_cast<uint64_t>(payload.size()));
  AppendPod(&out, core::Crc32(payload.data(), payload.size()));
  out += payload;
  return out;
}

}  // namespace

const char* KillPointName(KillPoint point) {
  switch (point) {
    case KillPoint::kNone: return "none";
    case KillPoint::kBeforeWrite: return "before-write";
    case KillPoint::kMidWriteTruncate: return "mid-write-truncate";
    case KillPoint::kAfterWrite: return "after-write";
    case KillPoint::kPostWriteBitFlip: return "post-write-bit-flip";
    case KillPoint::kBetweenCheckpoints: return "between-checkpoints";
  }
  return "unknown";
}

const char* CheckpointSectionName(CheckpointSectionId id) {
  switch (id) {
    case CheckpointSectionId::kConfig: return "config";
    case CheckpointSectionId::kProgress: return "progress";
    case CheckpointSectionId::kParams: return "params";
    case CheckpointSectionId::kOptimizer: return "optimizer";
    case CheckpointSectionId::kRng: return "rng";
    case CheckpointSectionId::kIterator: return "iterator";
  }
  return "unknown";
}

std::string EncodeCheckpoint(const TrainCheckpoint& ck) {
  std::string config;
  AppendPod(&config, ck.config_fingerprint);

  std::string progress;
  AppendPod(&progress, ck.phase);
  AppendPod(&progress, ck.epoch);
  AppendPod(&progress, ck.step_in_epoch);
  AppendPod(&progress, ck.global_step);
  AppendPod(&progress, static_cast<uint32_t>(ck.diagnostics.size()));
  for (float d : ck.diagnostics) AppendPod(&progress, d);

  std::string params;
  AppendPod(&params, static_cast<uint32_t>(ck.params.size()));
  for (const Matrix& m : ck.params) AppendMatrix(&params, m);

  std::string optimizer;
  AppendPod(&optimizer, ck.adam_t);
  AppendPod(&optimizer, static_cast<uint32_t>(ck.adam_m.size()));
  for (size_t i = 0; i < ck.adam_m.size(); ++i) {
    AppendMatrix(&optimizer, ck.adam_m[i]);
    AppendMatrix(&optimizer, ck.adam_v[i]);
  }

  std::string rng;
  AppendPod(&rng, static_cast<uint32_t>(ck.rng_streams.size()));
  for (const RngState& st : ck.rng_streams) {
    for (uint64_t w : st.words) AppendPod(&rng, w);
    AppendPod(&rng, static_cast<uint8_t>(st.has_cached_normal ? 1 : 0));
    AppendPod(&rng, st.cached_normal);
  }

  std::string iterator;
  AppendPod(&iterator, static_cast<uint8_t>(ck.has_iterator ? 1 : 0));
  AppendPod(&iterator, ck.iterator_cursor);
  AppendPod(&iterator, static_cast<uint64_t>(ck.iterator_order.size()));
  iterator.append(reinterpret_cast<const char*>(ck.iterator_order.data()),
                  ck.iterator_order.size() * sizeof(uint32_t));

  std::string out;
  out.append(kMagic, 4);
  AppendPod(&out, kContainerVersion);
  AppendPod(&out, static_cast<uint32_t>(6));
  out += EncodeSection(CheckpointSectionId::kConfig, config);
  out += EncodeSection(CheckpointSectionId::kProgress, progress);
  out += EncodeSection(CheckpointSectionId::kParams, params);
  out += EncodeSection(CheckpointSectionId::kOptimizer, optimizer);
  out += EncodeSection(CheckpointSectionId::kRng, rng);
  out += EncodeSection(CheckpointSectionId::kIterator, iterator);
  return out;
}

Result<std::vector<CheckpointSectionSpan>> ListCheckpointSections(
    const std::string& bytes) {
  Reader r(bytes.data(), bytes.size());
  char magic[4];
  if (!r.Bytes(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("not a GCK1 checkpoint container");
  }
  uint32_t version = 0, num_sections = 0;
  if (!r.Pod(&version) || !r.Pod(&num_sections)) {
    return Status::InvalidArgument("truncated checkpoint header");
  }
  if (version != kContainerVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  if (num_sections == 0 || num_sections > kMaxSections) {
    return Status::InvalidArgument("corrupt checkpoint section count");
  }
  std::vector<CheckpointSectionSpan> spans;
  size_t pos = 12;  // magic + version + count
  for (uint32_t i = 0; i < num_sections; ++i) {
    uint32_t id = 0, crc = 0;
    uint64_t size = 0;
    if (!r.Pod(&id) || !r.Pod(&size) || !r.Pod(&crc)) {
      return Status::InvalidArgument("truncated checkpoint section header");
    }
    pos += 16;  // id + size + crc
    if (size > r.remaining()) {
      return Status::InvalidArgument("checkpoint section " +
                                     std::to_string(id) +
                                     " claims more bytes than the file holds");
    }
    spans.push_back({id, pos, static_cast<size_t>(size)});
    char discard[1 << 12];
    uint64_t left = size;
    while (left > 0) {
      const size_t chunk = std::min<uint64_t>(left, sizeof(discard));
      if (!r.Bytes(discard, chunk)) {
        return Status::InvalidArgument("truncated checkpoint section payload");
      }
      left -= chunk;
    }
    pos += size;
  }
  if (!r.exhausted()) {
    return Status::InvalidArgument("trailing garbage after last section");
  }
  return spans;
}

Result<TrainCheckpoint> DecodeCheckpoint(const std::string& bytes,
                                         const std::string& origin) {
  auto spans = ListCheckpointSections(bytes);
  if (!spans.ok()) {
    return Status(spans.status().code(),
                  origin + ": " + spans.status().message());
  }

  TrainCheckpoint ck;
  bool seen[kMaxSections] = {};
  for (const CheckpointSectionSpan& span : *spans) {
    const auto id = static_cast<CheckpointSectionId>(span.id);
    if (span.id == 0 || span.id > 6) {
      return Status::InvalidArgument(origin + ": unknown section id " +
                                     std::to_string(span.id));
    }
    if (seen[span.id]) {
      return SectionError(origin, id, "appears twice");
    }
    seen[span.id] = true;

    const char* payload = bytes.data() + span.payload_offset;
    const uint32_t stored_crc = [&] {
      uint32_t crc;
      std::memcpy(&crc, bytes.data() + span.payload_offset - 4, sizeof(crc));
      return crc;
    }();
    if (core::Crc32(payload, span.payload_size) != stored_crc) {
      return SectionError(origin, id,
                          "failed its CRC-32 check (corrupt bytes)");
    }

    Reader r(payload, span.payload_size);
    switch (id) {
      case CheckpointSectionId::kConfig: {
        if (!r.Pod(&ck.config_fingerprint) || !r.exhausted()) {
          return SectionError(origin, id, "has a malformed payload");
        }
        break;
      }
      case CheckpointSectionId::kProgress: {
        uint32_t num_diag = 0;
        if (!r.Pod(&ck.phase) || !r.Pod(&ck.epoch) ||
            !r.Pod(&ck.step_in_epoch) || !r.Pod(&ck.global_step) ||
            !r.Pod(&num_diag) || num_diag > kMaxDiagnostics) {
          return SectionError(origin, id, "has a malformed payload");
        }
        ck.diagnostics.resize(num_diag);
        for (float& d : ck.diagnostics) {
          if (!r.Pod(&d)) return SectionError(origin, id, "is truncated");
        }
        if (!r.exhausted()) {
          return SectionError(origin, id, "has trailing bytes");
        }
        break;
      }
      case CheckpointSectionId::kParams: {
        uint32_t count = 0;
        if (!r.Pod(&count) || count > kMaxTensors) {
          return SectionError(origin, id, "has a malformed payload");
        }
        ck.params.resize(count);
        for (Matrix& m : ck.params) {
          if (!ReadMatrix(&r, &m)) {
            return SectionError(origin, id, "holds a malformed tensor");
          }
        }
        if (!r.exhausted()) {
          return SectionError(origin, id, "has trailing bytes");
        }
        break;
      }
      case CheckpointSectionId::kOptimizer: {
        uint32_t count = 0;
        if (!r.Pod(&ck.adam_t) || !r.Pod(&count) || count > kMaxTensors ||
            ck.adam_t < 0) {
          return SectionError(origin, id, "has a malformed payload");
        }
        ck.adam_m.resize(count);
        ck.adam_v.resize(count);
        for (uint32_t i = 0; i < count; ++i) {
          if (!ReadMatrix(&r, &ck.adam_m[i]) ||
              !ReadMatrix(&r, &ck.adam_v[i])) {
            return SectionError(origin, id, "holds a malformed moment tensor");
          }
        }
        if (!r.exhausted()) {
          return SectionError(origin, id, "has trailing bytes");
        }
        break;
      }
      case CheckpointSectionId::kRng: {
        uint32_t count = 0;
        if (!r.Pod(&count) || count > kMaxRngStreams) {
          return SectionError(origin, id, "has a malformed payload");
        }
        ck.rng_streams.resize(count);
        for (RngState& st : ck.rng_streams) {
          uint8_t flag = 0;
          for (uint64_t& w : st.words) {
            if (!r.Pod(&w)) return SectionError(origin, id, "is truncated");
          }
          if (!r.Pod(&flag) || flag > 1 || !r.Pod(&st.cached_normal)) {
            return SectionError(origin, id, "is truncated");
          }
          st.has_cached_normal = flag != 0;
          if ((st.words[0] | st.words[1] | st.words[2] | st.words[3]) == 0) {
            return SectionError(origin, id, "holds an all-zero rng state");
          }
        }
        if (!r.exhausted()) {
          return SectionError(origin, id, "has trailing bytes");
        }
        break;
      }
      case CheckpointSectionId::kIterator: {
        uint8_t flag = 0;
        uint64_t count = 0;
        if (!r.Pod(&flag) || flag > 1 || !r.Pod(&ck.iterator_cursor) ||
            !r.Pod(&count) || count > kMaxRows ||
            count * sizeof(uint32_t) != r.remaining()) {
          return SectionError(origin, id, "has a malformed payload");
        }
        ck.has_iterator = flag != 0;
        ck.iterator_order.resize(count);
        if (count > 0 &&
            !r.Bytes(ck.iterator_order.data(), count * sizeof(uint32_t))) {
          return SectionError(origin, id, "is truncated");
        }
        if (ck.iterator_cursor > count) {
          return SectionError(origin, id, "cursor is past the end");
        }
        break;
      }
    }
  }

  for (uint32_t id = 1; id <= 6; ++id) {
    if (!seen[id]) {
      return Status::InvalidArgument(
          origin + ": missing required " +
          CheckpointSectionName(static_cast<CheckpointSectionId>(id)) +
          " section");
    }
  }
  // Cross-section invariants: Adam moments pair up with parameters.
  if (ck.adam_m.size() != ck.params.size()) {
    return Status::InvalidArgument(
        origin + ": optimizer tracks " + std::to_string(ck.adam_m.size()) +
        " tensors but the model has " + std::to_string(ck.params.size()));
  }
  for (size_t i = 0; i < ck.params.size(); ++i) {
    if (ck.adam_m[i].rows() != ck.params[i].rows() ||
        ck.adam_m[i].cols() != ck.params[i].cols() ||
        ck.adam_v[i].rows() != ck.params[i].rows() ||
        ck.adam_v[i].cols() != ck.params[i].cols()) {
      return Status::InvalidArgument(
          origin + ": moment shape mismatch at tensor " + std::to_string(i));
    }
  }
  return ck;
}

Status SaveCheckpoint(const std::string& path, const TrainCheckpoint& ck) {
  const std::string bytes = EncodeCheckpoint(ck);
  return core::WriteFileAtomic(path, bytes.data(), bytes.size());
}

Result<TrainCheckpoint> LoadCheckpoint(const std::string& path) {
  auto bytes = core::ReadFile(path, kMaxCheckpointBytes);
  if (!bytes.ok()) return bytes.status();
  return DecodeCheckpoint(*bytes, path);
}

std::string CheckpointFileName(uint64_t global_step) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "checkpoint-%08llu.gck",
                static_cast<unsigned long long>(global_step));
  return buf;
}

std::vector<uint64_t> ListCheckpointSteps(const std::string& dir) {
  std::vector<uint64_t> steps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    constexpr const char* kPrefix = "checkpoint-";
    constexpr const char* kSuffix = ".gck";
    if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) continue;
    if (name.rfind(kPrefix, 0) != 0) continue;
    if (name.substr(name.size() - 4) != kSuffix) continue;
    const std::string digits =
        name.substr(std::strlen(kPrefix),
                    name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    steps.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(steps.begin(), steps.end());
  return steps;
}

Result<ResumeState> LoadLatestCheckpoint(const std::string& dir,
                                         uint64_t expected_fingerprint) {
  const std::vector<uint64_t> steps = ListCheckpointSteps(dir);
  if (steps.empty()) {
    return Status::NotFound("no checkpoint generations in " + dir);
  }
  std::vector<std::string> skipped;
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    const std::string path = dir + "/" + CheckpointFileName(*it);
    auto loaded = LoadCheckpoint(path);
    if (!loaded.ok()) {
      skipped.push_back(CheckpointFileName(*it) + ": " +
                        loaded.status().ToString());
      continue;
    }
    if ((*loaded).config_fingerprint != expected_fingerprint) {
      return Status::InvalidArgument(
          path + " was written under config fingerprint " +
          std::to_string((*loaded).config_fingerprint) +
          " but this run expects " + std::to_string(expected_fingerprint) +
          "; refusing to resume a different training trajectory");
    }
    ResumeState state;
    state.checkpoint = std::move(*loaded);
    state.loaded_step = *it;
    state.skipped = std::move(skipped);
    return state;
  }
  std::string detail;
  for (const std::string& s : skipped) detail += "\n  " + s;
  return Status::IoError("every checkpoint generation in " + dir +
                         " is corrupt:" + detail);
}

CheckpointManager::CheckpointManager(CheckpointOptions options)
    : options_(std::move(options)) {
  if (enabled()) {
    std::error_code ec;
    fs::create_directories(options_.dir, ec);
    GARCIA_CHECK(!ec) << "cannot create checkpoint directory " << options_.dir
                      << ": " << ec.message();
  }
}

std::optional<TrainCheckpoint> CheckpointManager::Resume() {
  if (!enabled()) return std::nullopt;
  // Sweep temp files a crashed write may have stranded; they are never
  // load candidates, only clutter.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("checkpoint-", 0) == 0 &&
        name.size() > 4 && name.substr(name.size() - 4) == ".tmp") {
      fs::remove(entry.path(), ec);
    }
  }

  auto resumed = LoadLatestCheckpoint(options_.dir, options_.fingerprint);
  if (!resumed.ok()) {
    if (resumed.status().code() == core::StatusCode::kNotFound) {
      return std::nullopt;  // fresh start
    }
    GARCIA_CHECK(false) << "checkpoint resume refused: "
                        << resumed.status().ToString();
  }
  for (const std::string& s : (*resumed).skipped) {
    GARCIA_LOG(Warning) << "skipped torn checkpoint generation " << s;
  }
  GARCIA_LOG(Debug) << "resuming from checkpoint generation "
                    << (*resumed).loaded_step << " in " << options_.dir;
  return std::move(*resumed).checkpoint;
}

void CheckpointManager::Kill(uint64_t global_step) {
  GARCIA_LOG(Warning) << "kill-point " << KillPointName(options_.fault.point)
                      << " firing at step " << global_step
                      << " (simulated crash)";
  throw TrainingKilled{options_.fault.point, global_step};
}

void CheckpointManager::AtStepEnd(
    uint64_t global_step, const std::function<TrainCheckpoint()>& snapshot) {
  const CheckpointFaultPlan& fault = options_.fault;
  const bool armed =
      fault.point != KillPoint::kNone && fault.step == global_step;
  const bool cadence =
      enabled() && global_step % options_.every_steps == 0;

  if (armed && fault.point == KillPoint::kBetweenCheckpoints) {
    GARCIA_CHECK(!cadence) << "between-checkpoints kill-point armed on a "
                              "checkpoint cadence step";
    Kill(global_step);
  }
  if (!cadence) {
    GARCIA_CHECK(!armed) << "write-class kill-point armed at step "
                         << global_step << ", which is not a cadence step";
    return;
  }
  if (armed && fault.point == KillPoint::kBeforeWrite) Kill(global_step);

  TrainCheckpoint ck = snapshot();
  ck.config_fingerprint = options_.fingerprint;
  ck.global_step = global_step;
  const std::string path =
      options_.dir + "/" + CheckpointFileName(global_step);

  if (armed && fault.point == KillPoint::kMidWriteTruncate) {
    // Simulate a torn write under the FINAL name: a crashed non-atomic
    // writer (or post-rename media damage). The loader must skip it.
    const std::string bytes = EncodeCheckpoint(ck);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    GARCIA_CHECK(f != nullptr) << "cannot tear " << path;
    std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
    std::fclose(f);
    Kill(global_step);
  }

  WriteGeneration(global_step, ck);

  if (armed && fault.point == KillPoint::kPostWriteBitFlip) {
    // In-place corruption of the durable generation (fsync'd garbage).
    auto bytes = core::ReadFile(path);
    GARCIA_CHECK(bytes.ok()) << bytes.status().ToString();
    std::string flipped = std::move(*bytes);
    flipped[flipped.size() / 2] ^= 0x20;
    std::FILE* f = std::fopen(path.c_str(), "wb");
    GARCIA_CHECK(f != nullptr) << "cannot corrupt " << path;
    std::fwrite(flipped.data(), 1, flipped.size(), f);
    std::fclose(f);
    Kill(global_step);
  }
  if (armed && fault.point == KillPoint::kAfterWrite) Kill(global_step);
}

void CheckpointManager::WriteGeneration(uint64_t global_step,
                                        const TrainCheckpoint& ck) {
  const std::string path =
      options_.dir + "/" + CheckpointFileName(global_step);
  const Status st = SaveCheckpoint(path, ck);
  if (!st.ok()) {
    // Losing durability must not lose the run; surface it and continue.
    GARCIA_LOG(Warning) << "checkpoint write failed (training continues): "
                        << st.ToString();
    return;
  }
  ++writes_;
  Prune();
}

void CheckpointManager::Prune() {
  if (options_.keep == 0) return;
  std::vector<uint64_t> steps = ListCheckpointSteps(options_.dir);
  std::error_code ec;
  while (steps.size() > options_.keep) {
    fs::remove(options_.dir + "/" + CheckpointFileName(steps.front()), ec);
    steps.erase(steps.begin());
  }
}

}  // namespace garcia::train
