#include "intent/intention_forest.h"

#include <algorithm>

#include "core/macros.h"

namespace garcia::intent {

uint32_t IntentionForest::AddRoot(std::string name) {
  GARCIA_CHECK(!finalized_);
  const uint32_t id = static_cast<uint32_t>(parent_.size());
  parent_.push_back(kNoParent);
  children_.emplace_back();
  names_.push_back(std::move(name));
  roots_.push_back(id);
  return id;
}

uint32_t IntentionForest::AddChild(uint32_t parent, std::string name) {
  GARCIA_CHECK(!finalized_);
  CheckId(parent);
  const uint32_t id = static_cast<uint32_t>(parent_.size());
  parent_.push_back(static_cast<int32_t>(parent));
  children_.emplace_back();
  names_.push_back(std::move(name));
  children_[parent].push_back(id);
  return id;
}

void IntentionForest::Finalize() {
  GARCIA_CHECK(!finalized_);
  finalized_ = true;
  const size_t n = parent_.size();
  depth_.assign(n, 0);
  tree_.assign(n, 0);
  // Ids are assigned in creation order and children are created after their
  // parents, so one forward pass computes depth and tree.
  for (uint32_t id = 0; id < n; ++id) {
    if (parent_[id] == kNoParent) {
      depth_[id] = 0;
      tree_[id] = id;
    } else {
      const uint32_t p = static_cast<uint32_t>(parent_[id]);
      GARCIA_CHECK_LT(p, id) << "parent created after child";
      depth_[id] = depth_[p] + 1;
      tree_[id] = tree_[p];
    }
  }
  size_t max_depth = 0;
  for (uint32_t id = 0; id < n; ++id) {
    max_depth = std::max<size_t>(max_depth, depth_[id]);
  }
  levels_.assign(max_depth + 1, {});
  for (uint32_t id = 0; id < n; ++id) levels_[depth_[id]].push_back(id);
}

int32_t IntentionForest::parent(uint32_t id) const {
  CheckId(id);
  return parent_[id];
}

const std::vector<uint32_t>& IntentionForest::children(uint32_t id) const {
  CheckId(id);
  return children_[id];
}

const std::string& IntentionForest::name(uint32_t id) const {
  CheckId(id);
  return names_[id];
}

uint32_t IntentionForest::depth(uint32_t id) const {
  GARCIA_CHECK(finalized_);
  CheckId(id);
  return depth_[id];
}

uint32_t IntentionForest::tree_of(uint32_t id) const {
  GARCIA_CHECK(finalized_);
  CheckId(id);
  return tree_[id];
}

size_t IntentionForest::num_levels() const {
  GARCIA_CHECK(finalized_);
  return levels_.size();
}

const std::vector<std::vector<uint32_t>>& IntentionForest::levels() const {
  GARCIA_CHECK(finalized_);
  return levels_;
}

std::vector<uint32_t> IntentionForest::AncestorChain(uint32_t id) const {
  CheckId(id);
  std::vector<uint32_t> chain;
  int32_t cur = static_cast<int32_t>(id);
  while (cur != kNoParent) {
    chain.push_back(static_cast<uint32_t>(cur));
    cur = parent_[cur];
  }
  return chain;
}

std::vector<uint32_t> IntentionForest::HardNegatives(uint32_t id) const {
  GARCIA_CHECK(finalized_);
  CheckId(id);
  std::vector<uint32_t> out;
  for (uint32_t other : levels_[depth_[id]]) {
    if (other != id && tree_[other] == tree_[id]) out.push_back(other);
  }
  return out;
}

std::vector<uint32_t> IntentionForest::EasyNegatives(uint32_t id) const {
  GARCIA_CHECK(finalized_);
  CheckId(id);
  std::vector<uint32_t> out;
  for (uint32_t other : levels_[depth_[id]]) {
    if (tree_[other] != tree_[id]) out.push_back(other);
  }
  return out;
}

std::vector<uint32_t> IntentionForest::SampleNegatives(uint32_t id,
                                                       size_t n_hard,
                                                       size_t n_easy,
                                                       core::Rng* rng) const {
  std::vector<uint32_t> hard = HardNegatives(id);
  std::vector<uint32_t> easy = EasyNegatives(id);
  std::vector<uint32_t> out;
  out.reserve(n_hard + n_easy);
  auto take = [rng, &out](std::vector<uint32_t>* pool, size_t k) {
    if (pool->size() <= k) {
      out.insert(out.end(), pool->begin(), pool->end());
      return;
    }
    auto picks = rng->SampleWithoutReplacement(pool->size(), k);
    for (size_t i : picks) out.push_back((*pool)[i]);
  };
  take(&hard, n_hard);
  // Easy negatives fill any hard shortfall.
  const size_t easy_budget = n_easy + (n_hard - std::min(n_hard, out.size()));
  take(&easy, easy_budget);
  return out;
}

std::vector<std::vector<uint32_t>> IntentionForest::BottomUpSchedule() const {
  GARCIA_CHECK(finalized_);
  std::vector<std::vector<uint32_t>> schedule(levels_.rbegin(),
                                              levels_.rend());
  return schedule;
}

void IntentionForest::CheckId(uint32_t id) const {
  GARCIA_CHECK_LT(id, parent_.size());
}

}  // namespace garcia::intent
