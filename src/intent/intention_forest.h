// Copyright (c) 2026 GARCIA reproduction authors.
// Intention trees (Def. 1): a forest of ≤H-level hierarchies whose nodes are
// intentions. Parents carry coarser concepts; queries/services attach to
// intentions (usually leaves).
//
// The forest provides everything the model needs:
//  * a bottom-up level schedule for the tree encoder (Eq. 3),
//  * ancestor chains P_{q,i} for IGCL positives (Eq. 9),
//  * same-level negative pools, split into "hard" (same tree) and "easy"
//    (other trees) negatives.

#ifndef GARCIA_INTENT_INTENTION_FOREST_H_
#define GARCIA_INTENT_INTENTION_FOREST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"

namespace garcia::intent {

constexpr int32_t kNoParent = -1;

/// A forest of intention trees over ids [0, size).
class IntentionForest {
 public:
  IntentionForest() = default;

  /// Adds a root intention; returns its id.
  uint32_t AddRoot(std::string name = "");

  /// Adds a child of an existing intention; returns its id.
  uint32_t AddChild(uint32_t parent, std::string name = "");

  /// Freezes the structure and builds level/tree indexes.
  void Finalize();
  bool finalized() const { return finalized_; }

  size_t size() const { return parent_.size(); }
  size_t num_trees() const { return roots_.size(); }

  int32_t parent(uint32_t id) const;
  const std::vector<uint32_t>& children(uint32_t id) const;
  const std::string& name(uint32_t id) const;

  /// Depth from the root (root = 0). Valid after Finalize.
  uint32_t depth(uint32_t id) const;

  /// Root id of the tree containing the intention. Valid after Finalize.
  uint32_t tree_of(uint32_t id) const;

  /// Deepest depth in the forest + 1 = number of levels (the paper's H ≤ 5).
  size_t num_levels() const;

  bool IsLeaf(uint32_t id) const { return children_[id].empty(); }
  const std::vector<uint32_t>& roots() const { return roots_; }

  /// Ids grouped by depth; index 0 is all roots. Valid after Finalize.
  const std::vector<std::vector<uint32_t>>& levels() const;

  /// The intention plus its ancestors up to the root: {id, parent, ...,
  /// root}. This is the positive set P_{q,i} of IGCL.
  std::vector<uint32_t> AncestorChain(uint32_t id) const;

  /// "Hard" negatives: same depth as `id`, same tree, excluding `id`.
  std::vector<uint32_t> HardNegatives(uint32_t id) const;

  /// "Easy" negatives: same depth as `id`, different tree.
  std::vector<uint32_t> EasyNegatives(uint32_t id) const;

  /// Samples up to n_hard + n_easy distinct negatives (hard first, easy as
  /// fill) — the negative set D of Eq. 9.
  std::vector<uint32_t> SampleNegatives(uint32_t id, size_t n_hard,
                                        size_t n_easy, core::Rng* rng) const;

  /// Bottom-up aggregation order: levels from deepest to root. Each entry is
  /// a level's node ids; the tree encoder runs one aggregation per step.
  std::vector<std::vector<uint32_t>> BottomUpSchedule() const;

 private:
  void CheckId(uint32_t id) const;

  bool finalized_ = false;
  std::vector<int32_t> parent_;
  std::vector<std::vector<uint32_t>> children_;
  std::vector<std::string> names_;
  std::vector<uint32_t> roots_;
  // Computed by Finalize:
  std::vector<uint32_t> depth_;
  std::vector<uint32_t> tree_;
  std::vector<std::vector<uint32_t>> levels_;
};

}  // namespace garcia::intent

#endif  // GARCIA_INTENT_INTENTION_FOREST_H_
