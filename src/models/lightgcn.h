// Copyright (c) 2026 GARCIA reproduction authors.
// LightGCN baseline (He et al., SIGIR'20), attribute-extended per the
// paper's setup: symmetric-normalized neighborhood sums over the service
// search graph, layer-mean readout, no per-layer transforms.

#ifndef GARCIA_MODELS_LIGHTGCN_H_
#define GARCIA_MODELS_LIGHTGCN_H_

#include <string>
#include <vector>

#include "models/baseline_gnn.h"

namespace garcia::models {

class LightGcn : public GnnBaseline {
 public:
  explicit LightGcn(const TrainConfig& config) : GnnBaseline(config) {}

  std::string name() const override { return "LightGCN"; }

 protected:
  void BuildModules(const data::Scenario& s) override;
  nn::Tensor ComputeEmbeddings(const graph::Block& block) override;

  /// Propagation with an optional edge-keep mask (SGL reuses this). The
  /// mask only exists on the full graph; sampled blocks weight edges by
  /// the full graph's degrees (graph::InvSqrtDegrees).
  nn::Tensor PropagateFrom(const nn::Tensor& z0, const graph::Block& block,
                           const std::vector<uint8_t>* keep) const;

 private:
  std::vector<float> inv_sqrt_deg_;  // full-graph 1/sqrt(deg), sampling only
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_LIGHTGCN_H_
