// Copyright (c) 2026 GARCIA reproduction authors.
// LightGCN baseline (He et al., SIGIR'20), attribute-extended per the
// paper's setup: symmetric-normalized neighborhood sums over the service
// search graph, layer-mean readout, no per-layer transforms.

#ifndef GARCIA_MODELS_LIGHTGCN_H_
#define GARCIA_MODELS_LIGHTGCN_H_

#include <string>
#include <vector>

#include "models/baseline_gnn.h"

namespace garcia::models {

class LightGcn : public GnnBaseline {
 public:
  explicit LightGcn(const TrainConfig& config) : GnnBaseline(config) {}

  std::string name() const override { return "LightGCN"; }

 protected:
  nn::Tensor ComputeEmbeddings() override;

  /// Propagation with an optional edge-keep mask (SGL reuses this).
  nn::Tensor PropagateFrom(const nn::Tensor& z0,
                           const std::vector<uint8_t>* keep) const;
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_LIGHTGCN_H_
