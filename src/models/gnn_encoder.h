// Copyright (c) 2026 GARCIA reproduction authors.
// GNN encoders over the service search graph.
//
// GarciaGnnEncoder implements Eq. 2 of the paper:
//   Aggregate: m_q = Tanh(W_A · Σ_{v∈N_q} α_{q,v} [z_v || e_{q,v}])
//   Update:    z_q^{l+1} = ReLU(W_U [z_q^l || m_q])
//   Readout:   z_q = mean_l z_q^{(l)}
// with α produced by a GAT-style attention over [z_q || z_v || e] and
// normalized per destination via segment softmax.
//
// The file also provides the shared symmetric-normalized propagation used
// by the LightGCN family of baselines.

#ifndef GARCIA_MODELS_GNN_ENCODER_H_
#define GARCIA_MODELS_GNN_ENCODER_H_

#include <memory>
#include <vector>

#include "graph/search_graph.h"
#include "nn/module.h"
#include "nn/ops.h"

namespace garcia::models {

/// Per-layer node representations of one encoding pass.
struct GnnOutput {
  /// layers[l] is the N x d matrix z^{(l)}, l = 0..L.
  std::vector<nn::Tensor> layers;
  /// Mean over layers (the readout of Eq. 2).
  nn::Tensor readout;
};

/// The adaptive encoder of Sec. IV-A1, bound to one graph partition.
/// Node initial states are id embeddings plus a linear projection of the
/// node attributes (the paper initializes from "original attributes or
/// learnable embedding table"; we use both).
class GarciaGnnEncoder : public nn::Module {
 public:
  /// use_attention=false replaces the learned attention with uniform
  /// 1/deg weights (the "attention vs mean aggregation" ablation of
  /// DESIGN.md §5).
  GarciaGnnEncoder(size_t num_nodes, size_t attr_dim, size_t dim,
                   size_t num_layers, core::Rng* rng,
                   bool use_attention = true);

  /// Runs L layers over the (finalized) graph. The graph must have
  /// num_nodes nodes and attr_dim attributes.
  GnnOutput Encode(const graph::SearchGraph& g) const;

  size_t dim() const { return dim_; }
  size_t num_layers() const { return num_layers_; }

 private:
  size_t dim_;
  size_t num_layers_;
  bool use_attention_;
  std::unique_ptr<nn::Embedding> id_embedding_;
  std::unique_ptr<nn::Linear> attr_proj_;
  struct Layer {
    std::unique_ptr<nn::Linear> attention;  // [z_dst||z_src||e] -> 1
    std::unique_ptr<nn::Linear> aggregate;  // W_A: [z_src||e] -> d
    std::unique_ptr<nn::Linear> update;     // W_U: [z||m] -> d
  };
  std::vector<Layer> layers_;
};

/// One step of symmetric-normalized sum aggregation (LightGCN style):
/// out[i] = Σ_{e: dst=i} z[src_e] / sqrt(deg(src_e) · deg(dst_e)).
/// `keep` optionally masks edges (SGL edge dropout); degrees are computed
/// on the kept edges.
nn::Tensor GcnPropagate(const nn::Tensor& z,
                        const std::vector<uint32_t>& edge_src,
                        const std::vector<uint32_t>& edge_dst,
                        size_t num_nodes,
                        const std::vector<uint8_t>* keep = nullptr);

}  // namespace garcia::models

#endif  // GARCIA_MODELS_GNN_ENCODER_H_
