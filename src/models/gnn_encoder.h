// Copyright (c) 2026 GARCIA reproduction authors.
// GNN encoders over the service search graph.
//
// GarciaGnnEncoder implements Eq. 2 of the paper:
//   Aggregate: m_q = Tanh(W_A · Σ_{v∈N_q} α_{q,v} [z_v || e_{q,v}])
//   Update:    z_q^{l+1} = ReLU(W_U [z_q^l || m_q])
//   Readout:   z_q = mean_l z_q^{(l)}
// with α produced by a GAT-style attention over [z_q || z_v || e] and
// normalized per destination via segment softmax.
//
// There is exactly ONE encode implementation, EncodeBlock, which runs the
// L passes over a graph::Block (DESIGN.md §5e): the full-graph pass is the
// trivial all-nodes block, a training minibatch is a sampled block whose
// per-pass compacted src/dst/edge-feature arrays shrink toward the seed
// rows. Seed rows are a prefix of every per-layer representation.
//
// The file also provides the shared symmetric-normalized propagation used
// by the LightGCN family of baselines, in full-graph and per-block-layer
// forms.

#ifndef GARCIA_MODELS_GNN_ENCODER_H_
#define GARCIA_MODELS_GNN_ENCODER_H_

#include <memory>
#include <vector>

#include "graph/neighbor_sampler.h"
#include "graph/search_graph.h"
#include "nn/module.h"
#include "nn/ops.h"

namespace garcia::models {

/// Per-layer node representations of one encoding pass.
struct GnnOutput {
  /// layers[l] is the z^{(l)} matrix, l = 0..L. Over a sampled block the
  /// row count shrinks with l (|A_l| rows, seeds first); over the full
  /// graph every layer has all N rows.
  std::vector<nn::Tensor> layers;
  /// Mean over layers (the readout of Eq. 2), restricted to the block's
  /// readout rows (all nodes for the full graph, the seeds for a sample).
  nn::Tensor readout;
};

/// The adaptive encoder of Sec. IV-A1, bound to one graph partition.
/// Node initial states are id embeddings plus a linear projection of the
/// node attributes (the paper initializes from "original attributes or
/// learnable embedding table"; we use both).
class GarciaGnnEncoder : public nn::Module {
 public:
  /// use_attention=false replaces the learned attention with uniform
  /// 1/deg weights (the "attention vs mean aggregation" ablation of
  /// DESIGN.md §5).
  GarciaGnnEncoder(size_t num_nodes, size_t attr_dim, size_t dim,
                   size_t num_layers, core::Rng* rng,
                   bool use_attention = true);

  /// Runs L layers over the (finalized) graph: EncodeBlock on the trivial
  /// all-nodes block. The graph must have num_nodes nodes and attr_dim
  /// attributes.
  GnnOutput Encode(const graph::SearchGraph& g) const;

  /// Runs L layers over one block of the graph. A sampled block must come
  /// from a NeighborSampler over `g` with matching num_layers; with
  /// fanout 0 the seed readout rows are bit-identical to Encode(g)'s rows
  /// for the same nodes.
  GnnOutput EncodeBlock(const graph::SearchGraph& g,
                        const graph::Block& block) const;

  size_t dim() const { return dim_; }
  size_t num_layers() const { return num_layers_; }
  size_t num_nodes() const { return id_embedding_->num_entities(); }

 private:
  size_t dim_;
  size_t num_layers_;
  bool use_attention_;
  std::unique_ptr<nn::Embedding> id_embedding_;
  std::unique_ptr<nn::Linear> attr_proj_;
  struct Layer {
    std::unique_ptr<nn::Linear> attention;  // [z_dst||z_src||e] -> 1
    std::unique_ptr<nn::Linear> aggregate;  // W_A: [z_src||e] -> d
    std::unique_ptr<nn::Linear> update;     // W_U: [z||m] -> d
  };
  std::vector<Layer> layers_;
};

/// First `rows` rows of z. The identity (the same tensor, no tape node)
/// when z already has exactly that many rows — full-graph passes stay on
/// the exact pre-block tape.
nn::Tensor SliceRows(const nn::Tensor& z, size_t rows);

/// Mean over per-layer representations restricted to the first `rows`
/// rows of each. Equals nn::Average when every layer already has `rows`
/// rows (the full-graph case).
nn::Tensor LayerMeanReadout(const std::vector<nn::Tensor>& layers,
                            size_t rows);

/// One step of symmetric-normalized sum aggregation (LightGCN style):
/// out[i] = Σ_{e: dst=i} z[src_e] / sqrt(deg(src_e) · deg(dst_e)).
/// `keep` optionally masks edges (SGL edge dropout); degrees are computed
/// on the kept edges.
nn::Tensor GcnPropagate(const nn::Tensor& z,
                        const std::vector<uint32_t>& edge_src,
                        const std::vector<uint32_t>& edge_dst,
                        size_t num_nodes,
                        const std::vector<uint8_t>* keep = nullptr);

/// The same propagation step over one pass of a sampled block. Edge
/// weights come from `inv_sqrt_deg` (full-graph degrees at the GLOBAL
/// endpoints, see graph::InvSqrtDegrees) so a sampled sum is an unbiased
/// restriction of the full-graph sum, not a renormalized one.
nn::Tensor GcnPropagateBlockLayer(const nn::Tensor& z,
                                  const graph::Block& block,
                                  const graph::BlockLayer& layer,
                                  const std::vector<float>& inv_sqrt_deg);

}  // namespace garcia::models

#endif  // GARCIA_MODELS_GNN_ENCODER_H_
