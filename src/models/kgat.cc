#include "models/kgat.h"

#include "core/macros.h"

namespace garcia::models {

using nn::Tensor;

void Kgat::BuildModules(const data::Scenario&) {
  const size_t d = cfg_.embedding_dim;
  relation_proj_ = std::make_unique<nn::Linear>(graph::kEdgeFeatureDim, d,
                                                &rng_);
  layers_.resize(cfg_.num_layers);
  for (auto& l : layers_) {
    l.w_sum = std::make_unique<nn::Linear>(d, d, &rng_);
    l.w_prod = std::make_unique<nn::Linear>(d, d, &rng_);
  }
}

std::vector<Tensor> Kgat::ExtraParameters() const {
  std::vector<Tensor> out = relation_proj_->Parameters();
  for (const auto& l : layers_) {
    auto p1 = l.w_sum->Parameters();
    auto p2 = l.w_prod->Parameters();
    out.insert(out.end(), p1.begin(), p1.end());
    out.insert(out.end(), p2.begin(), p2.end());
  }
  return out;
}

Tensor Kgat::ComputeEmbeddings(const graph::Block& block) {
  const graph::SearchGraph& g = scenario_->graph;
  std::vector<Tensor> outputs;
  Tensor z = BaseEmbeddings(block);
  outputs.push_back(z);

  if (block.full_graph) {
    const size_t n = g.num_nodes();
    Tensor e_rel;
    if (g.num_edges() > 0) {
      e_rel = relation_proj_->Forward(Tensor::Constant(g.edge_features()));
    }
    for (size_t l = 0; l < cfg_.num_layers; ++l) {
      if (g.num_edges() == 0) {
        outputs.push_back(z);
        continue;
      }
      Tensor z_src = nn::GatherRows(z, g.edge_src());
      Tensor z_dst = nn::GatherRows(z, g.edge_dst());
      // KGAT attention: pi(h, r, t) = (W z_t)^T tanh(W z_h + e_r); with W
      // folded into the shared embedding space this is
      // <z_src, tanh(z_dst + e_r)>, normalized per destination.
      Tensor score = nn::RowDot(z_src, nn::Tanh(nn::Add(z_dst, e_rel)));
      Tensor alpha = nn::SegmentSoftmax(score, g.edge_dst(), n);
      Tensor agg =
          nn::SegmentSum(nn::MulColBroadcast(z_src, alpha), g.edge_dst(), n);
      // Bi-interaction: LeakyReLU(W1(z+agg)) + LeakyReLU(W2(z⊙agg)).
      Tensor sum_part =
          nn::LeakyRelu(layers_[l].w_sum->Forward(nn::Add(z, agg)), 0.2f);
      Tensor prod_part =
          nn::LeakyRelu(layers_[l].w_prod->Forward(nn::Mul(z, agg)), 0.2f);
      z = nn::Add(sum_part, prod_part);
      outputs.push_back(z);
    }
    return nn::Average(outputs);
  }

  GARCIA_CHECK_EQ(block.layers.size(), cfg_.num_layers);
  for (size_t l = 0; l < cfg_.num_layers; ++l) {
    const graph::BlockLayer& bl = block.layers[l];
    if (bl.src.empty()) {
      // Mirror the full path's "no edges" behavior on the block's
      // destination prefix.
      z = SliceRows(z, bl.num_dst);
      outputs.push_back(z);
      continue;
    }
    Tensor e_rel = relation_proj_->Forward(Tensor::Constant(bl.edge_feats));
    Tensor z_src = nn::GatherRows(z, bl.src);
    Tensor z_dst = nn::GatherRows(z, bl.dst);
    Tensor score = nn::RowDot(z_src, nn::Tanh(nn::Add(z_dst, e_rel)));
    Tensor alpha = nn::SegmentSoftmax(score, bl.dst, bl.num_dst);
    Tensor agg = nn::SegmentSum(nn::MulColBroadcast(z_src, alpha), bl.dst,
                                bl.num_dst);
    Tensor zd = SliceRows(z, bl.num_dst);
    Tensor sum_part =
        nn::LeakyRelu(layers_[l].w_sum->Forward(nn::Add(zd, agg)), 0.2f);
    Tensor prod_part =
        nn::LeakyRelu(layers_[l].w_prod->Forward(nn::Mul(zd, agg)), 0.2f);
    z = nn::Add(sum_part, prod_part);
    outputs.push_back(z);
  }
  return LayerMeanReadout(outputs, block.num_readout_rows());
}

}  // namespace garcia::models
