#include "models/text_encoder.h"

#include <cmath>

#include "core/macros.h"
#include "core/string_util.h"

namespace garcia::models {

namespace {

uint64_t Fnv1a(const char* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

NgramTextEncoder::NgramTextEncoder(size_t n, size_t num_buckets)
    : n_(n), num_buckets_(num_buckets) {
  GARCIA_CHECK_GE(n, 1u);
  GARCIA_CHECK_GE(num_buckets, 16u);
}

SparseVector NgramTextEncoder::Encode(const std::string& text) const {
  SparseVector v;
  const std::string lowered = core::ToLower(text);
  // Boundary markers so that whole short tokens form n-grams too.
  std::string padded = "^" + lowered + "$";
  if (padded.size() < n_) return v;
  for (size_t i = 0; i + n_ <= padded.size(); ++i) {
    const uint32_t bucket = static_cast<uint32_t>(
        Fnv1a(padded.data() + i, n_) % num_buckets_);
    v[bucket] += 1.0f;
  }
  // L2 normalize.
  double norm = 0.0;
  for (const auto& [b, w] : v) norm += static_cast<double>(w) * w;
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (auto& [b, w] : v) w = static_cast<float>(w / norm);
  }
  return v;
}

std::vector<SparseVector> NgramTextEncoder::EncodeBatch(
    const std::vector<std::string>& texts) const {
  std::vector<SparseVector> out;
  out.reserve(texts.size());
  for (const std::string& t : texts) out.push_back(Encode(t));
  return out;
}

double NgramTextEncoder::Cosine(const SparseVector& a, const SparseVector& b) {
  if (a.empty() || b.empty()) return 0.0;
  const SparseVector& small = a.size() <= b.size() ? a : b;
  const SparseVector& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [bucket, w] : small) {
    auto it = large.find(bucket);
    if (it != large.end()) dot += static_cast<double>(w) * it->second;
  }
  return dot;  // inputs are unit-norm
}

double NgramTextEncoder::Similarity(const std::string& a,
                                    const std::string& b) const {
  return Cosine(Encode(a), Encode(b));
}

}  // namespace garcia::models
