#include "models/wide_deep.h"

#include <cmath>

#include "core/logging.h"
#include "nn/ops.h"

namespace garcia::models {

using core::Matrix;
using nn::Tensor;

WideDeep::WideDeep(const TrainConfig& config)
    : cfg_(config), rng_(config.seed), exec_(config.num_threads) {
  exec_.set_fusion(config.fuse_ops);
}

WideDeep::~WideDeep() = default;

Matrix WideDeep::WideFeatures(const std::vector<data::Example>& examples,
                              const std::vector<uint32_t>& batch) const {
  const graph::SearchGraph& g = scenario_->graph;
  const size_t a = g.attr_dim();
  Matrix out(batch.size(), 3 * a);
  for (size_t i = 0; i < batch.size(); ++i) {
    const data::Example& ex = examples[batch[i]];
    const float* qa = g.attributes().row(g.QueryNode(ex.query));
    const float* sa = g.attributes().row(g.ServiceNode(ex.service));
    for (size_t k = 0; k < a; ++k) {
      out.at(i, k) = qa[k];
      out.at(i, a + k) = sa[k];
      out.at(i, 2 * a + k) = qa[k] * sa[k];  // crossed features
    }
  }
  return out;
}

WideDeep::PackedBatch WideDeep::PackBatch(
    const std::vector<data::Example>& examples,
    const std::vector<uint32_t>& batch) const {
  PackedBatch packed;
  packed.q_ids.reserve(batch.size());
  packed.s_ids.reserve(batch.size());
  for (uint32_t bi : batch) {
    packed.q_ids.push_back(examples[bi].query);
    packed.s_ids.push_back(examples[bi].service);
  }
  packed.wide = WideFeatures(examples, batch);
  return packed;
}

Tensor WideDeep::LogitsFromPacked(const PackedBatch& packed) const {
  Tensor wide_in = Tensor::Constant(packed.wide);
  Tensor wide_logit = wide_->Forward(wide_in);
  Tensor deep_in = nn::ConcatCols(
      nn::ConcatCols(query_embedding_->Forward(packed.q_ids),
                     service_embedding_->Forward(packed.s_ids)),
      wide_in);
  Tensor deep_logit = deep_->Forward(deep_in);
  return nn::Add(wide_logit, deep_logit);
}

Tensor WideDeep::BatchLogits(const std::vector<data::Example>& examples,
                             const std::vector<uint32_t>& batch) const {
  return LogitsFromPacked(PackBatch(examples, batch));
}

void WideDeep::Fit(const data::Scenario& s) {
  core::ScopedExecution exec_scope(&exec_);
  scenario_ = &s;
  const size_t d = cfg_.embedding_dim;
  const size_t a = s.graph.attr_dim();
  query_embedding_ = std::make_unique<nn::Embedding>(s.num_queries(), d,
                                                     &rng_);
  service_embedding_ =
      std::make_unique<nn::Embedding>(s.num_services(), d, &rng_);
  wide_ = std::make_unique<nn::Linear>(3 * a, 1, &rng_);
  deep_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{2 * d + 3 * a, d, 1}, &rng_);

  std::vector<Tensor> params = query_embedding_->Parameters();
  auto append = [&params](const std::vector<Tensor>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  append(service_embedding_->Parameters());
  append(wide_->Parameters());
  append(deep_->Parameters());

  nn::Adam opt(params, cfg_.learning_rate);
  const size_t epochs = cfg_.finetune_epochs + cfg_.pretrain_epochs;
  BatchIterator it(s.train.size(), cfg_.batch_size, &rng_);

  // Crash-safe checkpointing (DESIGN.md §5h); resume lands here, after
  // every construction-time rng draw. Single phase, single rng stream.
  train::CheckpointManager ckpt(train::CheckpointOptions{
      cfg_.checkpoint_dir, cfg_.checkpoint_every_steps, cfg_.checkpoint_keep,
      TrainFingerprint(cfg_, name(), s), cfg_.checkpoint_fault});
  std::optional<train::TrainCheckpoint> resume = ckpt.Resume();
  uint64_t global_step = 0;
  size_t start_epoch = 0;
  size_t start_steps = 0;
  bool mid_epoch_resume = false;
  if (resume) {
    GARCIA_CHECK_EQ(resume->rng_streams.size(), 1u);
    GARCIA_CHECK(resume->has_iterator);
    RestoreTrainState(*resume, params, &opt);
    rng_.RestoreState(resume->rng_streams[0]);
    it.Restore(resume->iterator_order, resume->iterator_cursor);
    global_step = resume->global_step;
    start_epoch = resume->epoch;
    start_steps = resume->step_in_epoch;
    mid_epoch_resume = true;
  }
  auto snapshot = [&](uint64_t epoch, uint64_t step_in_epoch,
                      const PlannedStepState& planned) {
    train::TrainCheckpoint ck;
    ck.phase = 0;
    ck.epoch = epoch;
    ck.step_in_epoch = step_in_epoch;
    ck.params = SnapshotParameterValues(params);
    nn::AdamState adam = opt.ExportState();
    ck.adam_t = adam.t;
    ck.adam_m = std::move(adam.m);
    ck.adam_v = std::move(adam.v);
    ck.rng_streams = planned.rng_streams;
    ck.has_iterator = true;
    ck.iterator_cursor = planned.iterator_cursor;
    ck.iterator_order = planned.iterator_order;
    return ck;
  };

  const bool pipelined = cfg_.pipeline_depth > 0;
  // One step's planned work: the packed batch (feature assembly — the
  // expensive non-tensor part of a Wide&Deep step) plus labels and the
  // checkpoint state captured at plan time (see PlannedStepState).
  struct StepWork {
    PackedBatch packed;
    Matrix labels;
    PlannedStepState state;
  };
  for (size_t epoch = start_epoch; epoch < epochs; ++epoch) {
    size_t first = 0;
    if (mid_epoch_resume) {
      mid_epoch_resume = false;
      first = start_steps;
    } else {
      it.Reset();
    }
    double epoch_loss = 0.0;
    auto produce = [&](size_t) -> std::optional<StepWork> {
      std::vector<uint32_t> batch = it.Next();
      if (batch.empty()) return std::nullopt;
      StepWork w;
      w.packed = PackBatch(s.train, batch);
      w.labels = Matrix(batch.size(), 1);
      for (size_t i = 0; i < batch.size(); ++i) {
        w.labels.at(i, 0) = s.train[batch[i]].label;
      }
      w.state.rng_streams = {rng_.ExportState()};
      w.state.has_iterator = true;
      w.state.iterator_cursor = it.cursor();
      if (ckpt.enabled()) w.state.iterator_order = it.order();
      return w;
    };
    auto consume = [&](size_t step, StepWork& w) {
      opt.ZeroGrad();
      Tensor logits = LogitsFromPacked(w.packed);
      Tensor loss = nn::BceWithLogits(logits, w.labels);
      loss.Backward();
      nn::ClipGradNorm(params, 5.0);
      opt.Step();
      epoch_loss += loss.scalar();
      ++global_step;
      ckpt.AtStepEnd(global_step,
                     [&] { return snapshot(epoch, step + 1, w.state); });
    };
    const size_t steps =
        RunPipelinedSteps(exec_.pool(), pipelined, first,
                          cfg_.max_batches_per_epoch, produce, consume);
    GARCIA_LOG(Debug) << name() << " epoch " << epoch
                      << " loss=" << (steps ? epoch_loss / steps : 0.0);
  }
  fitted_ = true;
}

std::vector<float> WideDeep::Predict(
    const data::Scenario& s, const std::vector<data::Example>& examples) {
  GARCIA_CHECK(fitted_) << "Fit must run before Predict";
  GARCIA_CHECK(scenario_ == &s);
  if (examples.empty()) return {};
  core::ScopedExecution exec_scope(&exec_);
  std::vector<uint32_t> batch(examples.size());
  for (size_t i = 0; i < batch.size(); ++i) batch[i] = static_cast<uint32_t>(i);
  Tensor logits = BatchLogits(examples, batch);
  std::vector<float> scores(examples.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = nn::StableSigmoid(logits.value().at(i, 0));
  }
  return scores;
}

}  // namespace garcia::models
