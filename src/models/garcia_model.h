// Copyright (c) 2026 GARCIA reproduction authors.
// GARCIA (Sec. IV): adaptive head/tail GNN encoding over the service search
// graph, hierarchical intention encoding, multi-granularity contrastive
// pre-training (KTCL + SECL + IGCL, Eq. 11), and BCE fine-tuning of the
// MLP click head (Eq. 12-13).
//
// Training is block-based (DESIGN.md §5e): every step first PLANS — draws
// all batch/negative samples from the rng and maps the touched node rows
// through a graph::SeedSet — then ENCODES (the full graph when
// sample_fanout == 0, a NeighborSampler block seeded by the plan's rows
// otherwise), then EVALUATES the loss from the plan against the encoding.
// The plan/encode/evaluate split keeps the rng draw order and tensor op
// order of full-graph training exactly as they were, so sample_fanout == 0
// reproduces the pre-sampling loss trajectory bit for bit.
//
// Config toggles cover every ablation in the paper:
//  * share_encoders  -> GARCIA-Share (Fig. 3)
//  * use_secl=false  -> GARCIA w.o. SE (Fig. 4)
//  * use_igcl=false  -> GARCIA w.o. IG (Fig. 4)
//  * use_ktcl=use_secl=use_igcl=false -> GARCIA w.o. ALL (Fig. 4)
//  * use_intention=false -> the no-intention reference of Fig. 7
//  * tree_levels     -> H sweep (Fig. 7); alpha/beta/tau -> Figs. 5, 6, 8
//  * inner_product_head -> the online serving variant (Fig. 9)

#ifndef GARCIA_MODELS_GARCIA_MODEL_H_
#define GARCIA_MODELS_GARCIA_MODEL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "graph/neighbor_sampler.h"
#include "models/common.h"
#include "models/contrastive.h"
#include "models/gnn_encoder.h"
#include "models/intention_encoder.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace garcia::models {

class GarciaModel : public RankingModel {
 public:
  explicit GarciaModel(const TrainConfig& config);
  ~GarciaModel() override;

  std::string name() const override { return "GARCIA"; }
  void Fit(const data::Scenario& scenario) override;
  std::vector<float> Predict(
      const data::Scenario& scenario,
      const std::vector<data::Example>& examples) override;

  core::Matrix ExportQueryEmbeddings(const data::Scenario& s) override;
  core::Matrix ExportServiceEmbeddings(const data::Scenario& s) override;

  /// Pre-training loss values (test/diagnostic hooks).
  float first_pretrain_loss() const { return first_pretrain_loss_; }
  float last_pretrain_loss() const { return last_pretrain_loss_; }
  float last_finetune_loss() const { return last_finetune_loss_; }
  /// Number of mined KTCL anchor pairs (after Fit).
  size_t num_anchor_pairs() const { return anchors_.size(); }

 private:
  struct Encoded {
    GnnOutput head;
    GnnOutput tail;  // aliases head when encoders are shared
  };

  /// One pre-training step's sampled row sets. Rows are partition-local in
  /// full-graph mode and block-local in sampled mode (graph::SeedSet maps
  /// them); each section's flag records whether its loss term fires, with
  /// the exact gating of the original per-loss functions.
  struct PretrainPlan {
    bool ktcl_query = false;  // Eq. 4, tail->head anchor alignment
    std::vector<uint32_t> kq_tail_rows, kq_head_rows, kq_targets;
    bool ktcl_service = false;  // Eq. 5, two service views
    std::vector<uint32_t> ks_head_rows, ks_tail_rows;
    bool secl_head = false, secl_tail = false;  // Eq. 7, per partition
    std::vector<uint32_t> secl_head_rows, secl_tail_rows;
    bool igcl = false;  // Eq. 9/10, entity-intention alignment
    std::vector<uint32_t> igcl_head_rows, igcl_tail_rows;
    std::vector<uint32_t> igcl_head_intents, igcl_tail_intents;
  };

  /// One click-logits batch: per-partition query/service rows, plus the
  /// same services' rows in the OTHER partition when the inner-product
  /// head scores through the mean of the two views. `order[r]` is the
  /// batch position of logits row r (head-partition examples first).
  struct LogitsPlan {
    std::vector<uint32_t> order;
    std::vector<uint32_t> hq_rows, hs_rows, tq_rows, ts_rows;
    std::vector<uint32_t> hs_other_rows, ts_other_rows;
  };

  /// One step's sampled computation structure: at most one block per
  /// partition. Produced by SampleBlocks (the planning phase — the only
  /// part that draws sample_rng_) and consumed by EncodeSampled (the
  /// compute phase), so pipelined training can pack step t+1's blocks
  /// while step t's encode runs (DESIGN.md §5j).
  struct SampledBlocks {
    bool has_head = false;
    bool has_tail = false;  // never set when encoders are shared
    graph::Block head;
    graph::Block tail;
  };

  /// Builds encoders and partitions for the scenario (first Fit step) and
  /// asserts the encoder/graph shape invariants once.
  void Setup(const data::Scenario& s);
  /// Every trainable parameter, in the fixed optimizer order.
  std::vector<nn::Tensor> CollectParameters() const;
  Encoded EncodeAll() const;
  /// Samples one block per non-empty partition seed list, head first (the
  /// fixed sample_rng_ draw order).
  SampledBlocks SampleBlocks(const std::vector<uint32_t>& head_seeds,
                             const std::vector<uint32_t>& tail_seeds);
  /// Encodes the sampled blocks (a partition without a block leaves its
  /// output undefined — the plan guarantees nothing reads it). Draws no
  /// rng; safe to overlap with the next step's SampleBlocks.
  Encoded EncodeSampled(const SampledBlocks& blocks) const;
  /// Post-Fit encoding shared by Predict / the export hooks. Encoding is
  /// deterministic given the fitted parameters (no RNG), so the first call
  /// after Fit computes it and later calls reuse the cached pass. Re-Fit
  /// invalidates the cache (via Setup).
  const Encoded& CachedEncoded() const;

  /// (is_head_partition, local node row) of a query / service within the
  /// partition used for its representation.
  std::pair<bool, uint32_t> QueryRow(uint32_t query) const;
  uint32_t ServiceRow(bool head_partition, uint32_t service) const;

  /// Draws every random sample of one pre-training step (all rng use of
  /// the step) and maps the touched rows through the seed sets.
  PretrainPlan PlanPretrainStep(const data::Scenario& s, core::Rng* rng,
                                graph::SeedSet* head_seeds,
                                graph::SeedSet* tail_seeds) const;
  nn::Tensor PretrainLossFromPlan(const PretrainPlan& plan,
                                  const Encoded& e) const;
  nn::Tensor KtclLossFromPlan(const PretrainPlan& plan,
                              const Encoded& e) const;
  nn::Tensor SeclLossFromPlan(const PretrainPlan& plan,
                              const Encoded& e) const;
  nn::Tensor IgclLossFromPlan(const PretrainPlan& plan,
                              const Encoded& e) const;

  LogitsPlan PlanBatchLogits(const std::vector<data::Example>& examples,
                             const std::vector<uint32_t>& batch,
                             graph::SeedSet* head_seeds,
                             graph::SeedSet* tail_seeds) const;
  nn::Tensor LogitsFromPlan(const LogitsPlan& plan, const Encoded& e) const;

  TrainConfig cfg_;
  core::Rng rng_;
  /// Dedicated sampler stream (cfg_.sample_seed); separate from rng_ so
  /// enabling sampling never shifts the batch/negative draw sequence.
  core::Rng sample_rng_;
  /// Compute backend for every Fit / Predict / Export pass (0 threads =
  /// serial). Installed around those entry points with ScopedExecution.
  core::ExecutionContext exec_;
  bool fitted_ = false;
  bool sampling_ = false;  // cfg_.sample_fanout > 0

  // Scenario-bound state (built by Setup).
  const data::Scenario* scenario_ = nullptr;
  std::optional<graph::Subgraph> head_sub_;
  std::optional<graph::Subgraph> tail_sub_;
  std::optional<graph::NeighborSampler> head_sampler_;
  std::optional<graph::NeighborSampler> tail_sampler_;
  std::unique_ptr<GarciaGnnEncoder> head_encoder_;
  std::unique_ptr<GarciaGnnEncoder> tail_encoder_;  // null when shared
  std::unique_ptr<IntentionEncoder> intention_encoder_;
  std::unique_ptr<nn::Mlp> click_head_;
  KtclAnchors anchors_;
  /// Cached post-Fit encoding (see CachedEncoded); reset on Setup.
  mutable std::optional<Encoded> encoded_cache_;

  float first_pretrain_loss_ = 0.0f;
  float last_pretrain_loss_ = 0.0f;
  float last_finetune_loss_ = 0.0f;
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_GARCIA_MODEL_H_
