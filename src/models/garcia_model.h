// Copyright (c) 2026 GARCIA reproduction authors.
// GARCIA (Sec. IV): adaptive head/tail GNN encoding over the service search
// graph, hierarchical intention encoding, multi-granularity contrastive
// pre-training (KTCL + SECL + IGCL, Eq. 11), and BCE fine-tuning of the
// MLP click head (Eq. 12-13).
//
// Config toggles cover every ablation in the paper:
//  * share_encoders  -> GARCIA-Share (Fig. 3)
//  * use_secl=false  -> GARCIA w.o. SE (Fig. 4)
//  * use_igcl=false  -> GARCIA w.o. IG (Fig. 4)
//  * use_ktcl=use_secl=use_igcl=false -> GARCIA w.o. ALL (Fig. 4)
//  * use_intention=false -> the no-intention reference of Fig. 7
//  * tree_levels     -> H sweep (Fig. 7); alpha/beta/tau -> Figs. 5, 6, 8
//  * inner_product_head -> the online serving variant (Fig. 9)

#ifndef GARCIA_MODELS_GARCIA_MODEL_H_
#define GARCIA_MODELS_GARCIA_MODEL_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "models/common.h"
#include "models/contrastive.h"
#include "models/gnn_encoder.h"
#include "models/intention_encoder.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace garcia::models {

class GarciaModel : public RankingModel {
 public:
  explicit GarciaModel(const TrainConfig& config);
  ~GarciaModel() override;

  std::string name() const override { return "GARCIA"; }
  void Fit(const data::Scenario& scenario) override;
  std::vector<float> Predict(
      const data::Scenario& scenario,
      const std::vector<data::Example>& examples) override;

  core::Matrix ExportQueryEmbeddings(const data::Scenario& s) override;
  core::Matrix ExportServiceEmbeddings(const data::Scenario& s) override;

  /// Pre-training loss values (test/diagnostic hooks).
  float first_pretrain_loss() const { return first_pretrain_loss_; }
  float last_pretrain_loss() const { return last_pretrain_loss_; }
  float last_finetune_loss() const { return last_finetune_loss_; }
  /// Number of mined KTCL anchor pairs (after Fit).
  size_t num_anchor_pairs() const { return anchors_.size(); }

 private:
  struct Encoded {
    GnnOutput head;
    GnnOutput tail;  // aliases head when encoders are shared
  };

  /// Builds encoders and partitions for the scenario (first Fit step).
  void Setup(const data::Scenario& s);
  Encoded EncodeAll() const;
  /// Post-Fit encoding shared by Predict / the export hooks. Encoding is
  /// deterministic given the fitted parameters (no RNG), so the first call
  /// after Fit computes it and later calls reuse the cached pass. Re-Fit
  /// invalidates the cache (via Setup).
  const Encoded& CachedEncoded() const;

  /// (is_head_partition, local node row) of a query / service within the
  /// partition used for its representation.
  std::pair<bool, uint32_t> QueryRow(uint32_t query) const;
  uint32_t ServiceRow(bool head_partition, uint32_t service) const;

  nn::Tensor PretrainLoss(const data::Scenario& s, const Encoded& e,
                          core::Rng* rng);
  nn::Tensor KtclLoss(const data::Scenario& s, const Encoded& e,
                      core::Rng* rng) const;
  nn::Tensor SeclLoss(const Encoded& e, core::Rng* rng) const;
  nn::Tensor IgclLoss(const data::Scenario& s, const Encoded& e,
                      core::Rng* rng) const;

  /// Click logits for a batch of examples given an encoding pass. Rows are
  /// permuted (head-partition examples first); *order maps logit row ->
  /// position within `batch`.
  nn::Tensor BatchLogits(const std::vector<data::Example>& examples,
                         const std::vector<uint32_t>& batch, const Encoded& e,
                         std::vector<uint32_t>* order) const;

  TrainConfig cfg_;
  core::Rng rng_;
  /// Compute backend for every Fit / Predict / Export pass (0 threads =
  /// serial). Installed around those entry points with ScopedExecution.
  core::ExecutionContext exec_;
  bool fitted_ = false;

  // Scenario-bound state (built by Setup).
  const data::Scenario* scenario_ = nullptr;
  std::optional<graph::Subgraph> head_sub_;
  std::optional<graph::Subgraph> tail_sub_;
  std::unique_ptr<GarciaGnnEncoder> head_encoder_;
  std::unique_ptr<GarciaGnnEncoder> tail_encoder_;  // null when shared
  std::unique_ptr<IntentionEncoder> intention_encoder_;
  std::unique_ptr<nn::Mlp> click_head_;
  KtclAnchors anchors_;
  /// Cached post-Fit encoding (see CachedEncoded); reset on Setup.
  mutable std::optional<Encoded> encoded_cache_;

  float first_pretrain_loss_ = 0.0f;
  float last_pretrain_loss_ = 0.0f;
  float last_finetune_loss_ = 0.0f;
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_GARCIA_MODEL_H_
