#include "models/contrastive.h"

#include <unordered_map>

#include "core/string_util.h"
#include "models/text_encoder.h"

namespace garcia::models {

KtclAnchors MineCrossGroupAnchors(const data::Scenario& s,
                                  const std::vector<uint32_t>& source_queries,
                                  const std::vector<uint32_t>& target_queries,
                                  KtclRelevance relevance) {
  KtclAnchors out;
  if (target_queries.empty()) return out;

  // Precompute target embeddings once for the n-gram scorer.
  NgramTextEncoder encoder;
  std::vector<SparseVector> target_embs;
  if (relevance == KtclRelevance::kNgramCosine) {
    target_embs.reserve(target_queries.size());
    for (uint32_t p : target_queries) {
      target_embs.push_back(encoder.Encode(s.query_text[p]));
    }
  }

  for (uint32_t q : source_queries) {
    const SparseVector q_emb = relevance == KtclRelevance::kNgramCosine
                                   ? encoder.Encode(s.query_text[q])
                                   : SparseVector{};
    int best = -1;
    double best_rel = 0.0;
    uint64_t best_exposure = 0;
    for (size_t pi = 0; pi < target_queries.size(); ++pi) {
      const uint32_t p = target_queries[pi];
      // Criterion 2: shared correlation.
      if (s.query_keys[q].SharedWith(s.query_keys[p]) == 0) continue;
      // Criterion 1: semantic relevance.
      const double rel =
          relevance == KtclRelevance::kNgramCosine
              ? NgramTextEncoder::Cosine(q_emb, target_embs[pi])
              : core::TokenJaccard(s.query_text[q], s.query_text[p]);
      if (rel <= 0.0) continue;
      // Criterion 3: exposure as tie-break.
      const uint64_t e = s.query_exposure[p];
      if (rel > best_rel || (rel == best_rel && e > best_exposure)) {
        best = static_cast<int>(p);
        best_rel = rel;
        best_exposure = e;
      }
    }
    if (best >= 0) {
      out.tail_query.push_back(q);
      out.head_query.push_back(static_cast<uint32_t>(best));
    }
  }
  return out;
}

KtclAnchors MineKtclAnchors(const data::Scenario& s,
                            KtclRelevance relevance) {
  return MineCrossGroupAnchors(s, s.split.tail_queries,
                               s.split.head_queries, relevance);
}

std::vector<int32_t> AnchorHeadOf(const KtclAnchors& anchors,
                                  size_t num_queries) {
  std::vector<int32_t> head_of(num_queries, -1);
  for (size_t i = 0; i < anchors.size(); ++i) {
    if (anchors.tail_query[i] < num_queries) {
      head_of[anchors.tail_query[i]] =
          static_cast<int32_t>(anchors.head_query[i]);
    }
  }
  return head_of;
}

IgclBatch BuildIgclBatch(const IntentionEncoder& encoder,
                         const std::vector<uint32_t>& entity_intentions) {
  const auto& forest = encoder.forest();
  IgclBatch batch;

  // Candidate set: all intentions within the level budget, with a dense
  // position index.
  std::unordered_map<uint32_t, uint32_t> pos_of;
  for (size_t depth = 0; depth < encoder.levels(); ++depth) {
    if (depth >= forest.num_levels()) break;
    for (uint32_t id : forest.levels()[depth]) {
      pos_of[id] = static_cast<uint32_t>(batch.candidate_ids.size());
      batch.candidate_ids.push_back(id);
    }
  }
  GARCIA_CHECK(!batch.candidate_ids.empty());

  // Pairs.
  struct PairInfo {
    uint32_t anchor_row;
    uint32_t positive;
    uint32_t anchor_level;  // level of the attached intention i
  };
  std::vector<PairInfo> pairs;
  for (size_t row = 0; row < entity_intentions.size(); ++row) {
    const uint32_t attached = encoder.Attach(entity_intentions[row]);
    const uint32_t level_i = forest.depth(attached);
    for (uint32_t j : encoder.PositiveChain(entity_intentions[row])) {
      pairs.push_back({static_cast<uint32_t>(row), j, level_i});
    }
  }

  batch.mask = core::Matrix(pairs.size(), batch.candidate_ids.size());
  batch.anchor_rows.reserve(pairs.size());
  batch.targets.reserve(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    batch.anchor_rows.push_back(pairs[p].anchor_row);
    auto it = pos_of.find(pairs[p].positive);
    GARCIA_CHECK(it != pos_of.end());
    batch.targets.push_back(it->second);
    // Admit the positive plus every intention at the anchor's level
    // (same tree = "hard", other trees = "easy").
    batch.mask.at(p, it->second) = 1.0f;
    for (uint32_t neg : forest.levels()[pairs[p].anchor_level]) {
      auto nit = pos_of.find(neg);
      if (nit != pos_of.end()) batch.mask.at(p, nit->second) = 1.0f;
    }
  }
  return batch;
}

}  // namespace garcia::models
