// Copyright (c) 2026 GARCIA reproduction authors.
// SGL baseline (Wu et al., SIGIR'21): LightGCN plus a self-supervised
// InfoNCE between two stochastically edge-dropped graph views.

#ifndef GARCIA_MODELS_SGL_H_
#define GARCIA_MODELS_SGL_H_

#include <string>

#include "models/lightgcn.h"

namespace garcia::models {

class Sgl : public LightGcn {
 public:
  explicit Sgl(const TrainConfig& config) : LightGcn(config) {}

  std::string name() const override { return "SGL"; }

 protected:
  nn::Tensor AuxiliaryLoss(core::Rng* rng) override;
  bool AuxiliaryLossDrawsRng() const override { return true; }
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_SGL_H_
