#include "models/gnn_encoder.h"

#include <cmath>
#include <numeric>

namespace garcia::models {

using nn::Tensor;

GarciaGnnEncoder::GarciaGnnEncoder(size_t num_nodes, size_t attr_dim,
                                   size_t dim, size_t num_layers,
                                   core::Rng* rng, bool use_attention)
    : dim_(dim), num_layers_(num_layers), use_attention_(use_attention) {
  id_embedding_ = std::make_unique<nn::Embedding>(num_nodes, dim, rng);
  RegisterChild(id_embedding_.get());
  attr_proj_ = std::make_unique<nn::Linear>(attr_dim, dim, rng);
  RegisterChild(attr_proj_.get());
  const size_t de = graph::kEdgeFeatureDim;
  layers_.resize(num_layers);
  for (auto& layer : layers_) {
    layer.attention = std::make_unique<nn::Linear>(2 * dim + de, 1, rng,
                                                   /*bias=*/false);
    layer.aggregate = std::make_unique<nn::Linear>(dim + de, dim, rng);
    layer.update = std::make_unique<nn::Linear>(2 * dim, dim, rng);
    RegisterChild(layer.attention.get());
    RegisterChild(layer.aggregate.get());
    RegisterChild(layer.update.get());
  }
}

Tensor SliceRows(const Tensor& z, size_t rows) {
  if (z.rows() == rows) return z;
  GARCIA_CHECK_LT(rows, z.rows());
  std::vector<uint32_t> prefix(rows);
  std::iota(prefix.begin(), prefix.end(), 0u);
  return nn::GatherRows(z, std::move(prefix));
}

Tensor LayerMeanReadout(const std::vector<Tensor>& layers, size_t rows) {
  bool uniform = true;
  for (const Tensor& l : layers) uniform = uniform && l.rows() == rows;
  if (uniform) return nn::Average(layers);
  std::vector<Tensor> sliced;
  sliced.reserve(layers.size());
  for (const Tensor& l : layers) sliced.push_back(SliceRows(l, rows));
  return nn::Average(sliced);
}

GnnOutput GarciaGnnEncoder::Encode(const graph::SearchGraph& g) const {
  return EncodeBlock(g, graph::Block::FullGraph(g));
}

GnnOutput GarciaGnnEncoder::EncodeBlock(const graph::SearchGraph& g,
                                        const graph::Block& block) const {
  GARCIA_CHECK(g.finalized());
  GARCIA_CHECK_EQ(g.num_nodes(), id_embedding_->num_entities());
  GARCIA_CHECK_EQ(block.num_graph_nodes, g.num_nodes());
  const bool full = block.full_graph;
  if (!full) GARCIA_CHECK_EQ(block.layers.size(), num_layers_);

  GnnOutput out;
  // z^(0): id embedding + projected attributes — the whole table for the
  // full graph, the block's gathered rows otherwise.
  Tensor z;
  if (full) {
    z = nn::Add(id_embedding_->Table(),
                attr_proj_->Forward(Tensor::Constant(g.attributes())));
  } else {
    core::Matrix attrs(block.nodes.size(), g.attr_dim());
    for (size_t i = 0; i < block.nodes.size(); ++i) {
      attrs.CopyRowFrom(g.attributes(), block.nodes[i], i);
    }
    z = nn::Add(nn::GatherRows(id_embedding_->Table(), block.nodes),
                attr_proj_->Forward(Tensor::Constant(std::move(attrs))));
  }
  out.layers.push_back(z);

  // Full graph: one edge-feature constant hoisted out of the layer loop;
  // sampled blocks carry per-pass feature rows instead.
  Tensor full_efeat;
  if (full) full_efeat = Tensor::Constant(g.edge_features());

  for (size_t l = 0; l < num_layers_; ++l) {
    const Layer& layer = layers_[l];
    const std::vector<uint32_t>& src =
        full ? g.edge_src() : block.layers[l].src;
    const std::vector<uint32_t>& dst =
        full ? g.edge_dst() : block.layers[l].dst;
    const size_t ndst = full ? g.num_nodes() : block.layers[l].num_dst;
    if (src.empty()) {
      // No edges: message is zero; update still mixes z with the zero
      // message so parameters stay exercised.
      Tensor zero_m = Tensor::Constant(core::Matrix(ndst, dim_));
      Tensor m = nn::Tanh(layer.aggregate->Forward(
          nn::ConcatCols(zero_m, Tensor::Constant(core::Matrix(
                                     ndst, graph::kEdgeFeatureDim)))));
      z = nn::Relu(layer.update->Forward(
          nn::ConcatCols(SliceRows(z, ndst), m)));
      out.layers.push_back(z);
      continue;
    }
    Tensor efeat =
        full ? full_efeat : Tensor::Constant(block.layers[l].edge_feats);
    Tensor z_src = nn::GatherRows(z, src);
    Tensor alpha;
    if (use_attention_) {
      Tensor z_dst = nn::GatherRows(z, dst);
      // Attention logits over [z_dst || z_src || e]; α via per-destination
      // segment softmax ("implemented by the recent emerging attention
      // mechanism", Eq. 2).
      Tensor att_in = nn::ConcatCols(nn::ConcatCols(z_dst, z_src), efeat);
      Tensor logits = nn::LeakyRelu(layer.attention->Forward(att_in), 0.2f);
      alpha = nn::SegmentSoftmax(logits, dst, ndst);
    } else {
      // Uniform 1/deg weights (segment softmax of constant scores).
      alpha = nn::SegmentSoftmax(
          Tensor::Constant(core::Matrix(src.size(), 1)), dst, ndst);
    }
    // Weighted sum of [z_v || e], then W_A + Tanh.
    Tensor msg_in = nn::ConcatCols(z_src, efeat);
    Tensor weighted = nn::MulColBroadcast(msg_in, alpha);
    Tensor summed = nn::SegmentSum(weighted, dst, ndst);
    Tensor m = nn::Tanh(layer.aggregate->Forward(summed));
    // Update: ReLU(W_U [z || m]) over this pass's destination prefix.
    z = nn::Relu(layer.update->Forward(nn::ConcatCols(SliceRows(z, ndst), m)));
    out.layers.push_back(z);
  }

  out.readout = LayerMeanReadout(out.layers, block.num_readout_rows());
  return out;
}

nn::Tensor GcnPropagate(const nn::Tensor& z,
                        const std::vector<uint32_t>& edge_src,
                        const std::vector<uint32_t>& edge_dst,
                        size_t num_nodes,
                        const std::vector<uint8_t>* keep) {
  GARCIA_CHECK_EQ(edge_src.size(), edge_dst.size());
  GARCIA_CHECK_EQ(z.rows(), num_nodes);
  // Degrees over kept edges. In- and out-degree are tracked separately so
  // asymmetric edge dropout (SGL) keeps every surviving edge weighted; on
  // the bidirectionally-stored graph without dropout they coincide with the
  // undirected degree.
  std::vector<double> deg_in(num_nodes, 0.0), deg_out(num_nodes, 0.0);
  size_t kept = 0;
  for (size_t e = 0; e < edge_src.size(); ++e) {
    if (keep != nullptr && !(*keep)[e]) continue;
    deg_in[edge_dst[e]] += 1.0;
    deg_out[edge_src[e]] += 1.0;
    ++kept;
  }
  if (kept == 0) return Tensor::Constant(core::Matrix(num_nodes, z.cols()));
  // Exactly `kept` survivors are known after the degree pass, so the weight
  // matrix is sized once and filled directly — no full-size scratch copy.
  std::vector<uint32_t> src_kept, dst_kept;
  src_kept.reserve(kept);
  dst_kept.reserve(kept);
  core::Matrix w_kept(kept, 1);
  size_t w = 0;
  for (size_t e = 0; e < edge_src.size(); ++e) {
    if (keep != nullptr && !(*keep)[e]) continue;
    const double d = deg_out[edge_src[e]] * deg_in[edge_dst[e]];
    w_kept.at(w, 0) = d > 0.0 ? static_cast<float>(1.0 / std::sqrt(d)) : 0.0f;
    src_kept.push_back(edge_src[e]);
    dst_kept.push_back(edge_dst[e]);
    ++w;
  }

  Tensor gathered = nn::GatherRows(z, src_kept);
  Tensor weighted =
      nn::MulColBroadcast(gathered, Tensor::Constant(std::move(w_kept)));
  return nn::SegmentSum(weighted, dst_kept, num_nodes);
}

nn::Tensor GcnPropagateBlockLayer(const nn::Tensor& z,
                                  const graph::Block& block,
                                  const graph::BlockLayer& layer,
                                  const std::vector<float>& inv_sqrt_deg) {
  GARCIA_CHECK(!block.full_graph);
  GARCIA_CHECK_GE(z.rows(), layer.num_src);
  if (layer.src.empty()) {
    return Tensor::Constant(core::Matrix(layer.num_dst, z.cols()));
  }
  core::Matrix w(layer.src.size(), 1);
  for (size_t e = 0; e < layer.src.size(); ++e) {
    w.at(e, 0) = inv_sqrt_deg[block.nodes[layer.src[e]]] *
                 inv_sqrt_deg[block.nodes[layer.dst[e]]];
  }
  Tensor gathered = nn::GatherRows(z, layer.src);
  Tensor weighted =
      nn::MulColBroadcast(gathered, Tensor::Constant(std::move(w)));
  return nn::SegmentSum(weighted, layer.dst, layer.num_dst);
}

}  // namespace garcia::models
