#include "models/gnn_encoder.h"

#include <cmath>

namespace garcia::models {

using nn::Tensor;

GarciaGnnEncoder::GarciaGnnEncoder(size_t num_nodes, size_t attr_dim,
                                   size_t dim, size_t num_layers,
                                   core::Rng* rng, bool use_attention)
    : dim_(dim), num_layers_(num_layers), use_attention_(use_attention) {
  id_embedding_ = std::make_unique<nn::Embedding>(num_nodes, dim, rng);
  RegisterChild(id_embedding_.get());
  attr_proj_ = std::make_unique<nn::Linear>(attr_dim, dim, rng);
  RegisterChild(attr_proj_.get());
  const size_t de = graph::kEdgeFeatureDim;
  layers_.resize(num_layers);
  for (auto& layer : layers_) {
    layer.attention = std::make_unique<nn::Linear>(2 * dim + de, 1, rng,
                                                   /*bias=*/false);
    layer.aggregate = std::make_unique<nn::Linear>(dim + de, dim, rng);
    layer.update = std::make_unique<nn::Linear>(2 * dim, dim, rng);
    RegisterChild(layer.attention.get());
    RegisterChild(layer.aggregate.get());
    RegisterChild(layer.update.get());
  }
}

GnnOutput GarciaGnnEncoder::Encode(const graph::SearchGraph& g) const {
  GARCIA_CHECK(g.finalized());
  GARCIA_CHECK_EQ(g.num_nodes(), id_embedding_->num_entities());
  const size_t n = g.num_nodes();

  GnnOutput out;
  // z^(0): id embedding + projected attributes.
  Tensor z = nn::Add(id_embedding_->Table(),
                     attr_proj_->Forward(Tensor::Constant(g.attributes())));
  out.layers.push_back(z);

  const auto& src = g.edge_src();
  const auto& dst = g.edge_dst();
  Tensor efeat = Tensor::Constant(g.edge_features());

  for (size_t l = 0; l < num_layers_; ++l) {
    const Layer& layer = layers_[l];
    if (src.empty()) {
      // No edges: message is zero; update still mixes z with the zero
      // message so parameters stay exercised.
      Tensor zero_m = Tensor::Constant(core::Matrix(n, dim_));
      Tensor m = nn::Tanh(layer.aggregate->Forward(
          nn::ConcatCols(zero_m, Tensor::Constant(core::Matrix(
                                     n, graph::kEdgeFeatureDim)))));
      z = nn::Relu(layer.update->Forward(nn::ConcatCols(z, m)));
      out.layers.push_back(z);
      continue;
    }
    Tensor z_src = nn::GatherRows(z, src);
    Tensor alpha;
    if (use_attention_) {
      Tensor z_dst = nn::GatherRows(z, dst);
      // Attention logits over [z_dst || z_src || e]; α via per-destination
      // segment softmax ("implemented by the recent emerging attention
      // mechanism", Eq. 2).
      Tensor att_in = nn::ConcatCols(nn::ConcatCols(z_dst, z_src), efeat);
      Tensor logits = nn::LeakyRelu(layer.attention->Forward(att_in), 0.2f);
      alpha = nn::SegmentSoftmax(logits, dst, n);
    } else {
      // Uniform 1/deg weights (segment softmax of constant scores).
      alpha = nn::SegmentSoftmax(
          Tensor::Constant(core::Matrix(src.size(), 1)), dst, n);
    }
    // Weighted sum of [z_v || e], then W_A + Tanh.
    Tensor msg_in = nn::ConcatCols(z_src, efeat);
    Tensor weighted = nn::MulColBroadcast(msg_in, alpha);
    Tensor summed = nn::SegmentSum(weighted, dst, n);
    Tensor m = nn::Tanh(layer.aggregate->Forward(summed));
    // Update: ReLU(W_U [z || m]).
    z = nn::Relu(layer.update->Forward(nn::ConcatCols(z, m)));
    out.layers.push_back(z);
  }

  out.readout = nn::Average(out.layers);
  return out;
}

nn::Tensor GcnPropagate(const nn::Tensor& z,
                        const std::vector<uint32_t>& edge_src,
                        const std::vector<uint32_t>& edge_dst,
                        size_t num_nodes,
                        const std::vector<uint8_t>* keep) {
  GARCIA_CHECK_EQ(edge_src.size(), edge_dst.size());
  GARCIA_CHECK_EQ(z.rows(), num_nodes);
  // Degrees over kept edges. In- and out-degree are tracked separately so
  // asymmetric edge dropout (SGL) keeps every surviving edge weighted; on
  // the bidirectionally-stored graph without dropout they coincide with the
  // undirected degree.
  std::vector<double> deg_in(num_nodes, 0.0), deg_out(num_nodes, 0.0);
  size_t kept = 0;
  for (size_t e = 0; e < edge_src.size(); ++e) {
    if (keep != nullptr && !(*keep)[e]) continue;
    deg_in[edge_dst[e]] += 1.0;
    deg_out[edge_src[e]] += 1.0;
    ++kept;
  }
  if (kept == 0) return Tensor::Constant(core::Matrix(num_nodes, z.cols()));
  // Exactly `kept` survivors are known after the degree pass, so the weight
  // matrix is sized once and filled directly — no full-size scratch copy.
  std::vector<uint32_t> src_kept, dst_kept;
  src_kept.reserve(kept);
  dst_kept.reserve(kept);
  core::Matrix w_kept(kept, 1);
  size_t w = 0;
  for (size_t e = 0; e < edge_src.size(); ++e) {
    if (keep != nullptr && !(*keep)[e]) continue;
    const double d = deg_out[edge_src[e]] * deg_in[edge_dst[e]];
    w_kept.at(w, 0) = d > 0.0 ? static_cast<float>(1.0 / std::sqrt(d)) : 0.0f;
    src_kept.push_back(edge_src[e]);
    dst_kept.push_back(edge_dst[e]);
    ++w;
  }

  Tensor gathered = nn::GatherRows(z, src_kept);
  Tensor weighted =
      nn::MulColBroadcast(gathered, Tensor::Constant(std::move(w_kept)));
  return nn::SegmentSum(weighted, dst_kept, num_nodes);
}

}  // namespace garcia::models
