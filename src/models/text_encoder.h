// Copyright (c) 2026 GARCIA reproduction authors.
// Character n-gram text encoder — the repo's stand-in for the paper's
// future-work direction of "incorporating semantic-level information
// through text mining modules (e.g., BERT)" (Sec. VI).
//
// Texts are embedded as L2-normalized hashed bags of character trigrams;
// similarity is the cosine of these sparse vectors. Compared to token
// Jaccard it is robust to sub-token overlap ("iphone" vs "phone"), the
// failure case the paper's BERT module would address.

#ifndef GARCIA_MODELS_TEXT_ENCODER_H_
#define GARCIA_MODELS_TEXT_ENCODER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace garcia::models {

/// Sparse L2-normalized embedding: bucket -> weight.
using SparseVector = std::unordered_map<uint32_t, float>;

class NgramTextEncoder {
 public:
  /// n = n-gram length (default trigrams); num_buckets = hash space.
  explicit NgramTextEncoder(size_t n = 3, size_t num_buckets = 1 << 16);

  /// Embeds a text (lowercased; padded with boundary markers so short
  /// tokens still produce n-grams).
  SparseVector Encode(const std::string& text) const;

  /// Embeds a batch (e.g. the full service catalog, precomputed once by
  /// the serving-side text fallback).
  std::vector<SparseVector> EncodeBatch(
      const std::vector<std::string>& texts) const;

  /// Cosine similarity of two texts (0 when either is empty).
  double Similarity(const std::string& a, const std::string& b) const;

  /// Cosine of two precomputed embeddings.
  static double Cosine(const SparseVector& a, const SparseVector& b);

  size_t n() const { return n_; }
  size_t num_buckets() const { return num_buckets_; }

 private:
  size_t n_;
  size_t num_buckets_;
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_TEXT_ENCODER_H_
