// Copyright (c) 2026 GARCIA reproduction authors.
// Hierarchical intention encoder (Sec. IV-A2, Eq. 3):
//
//   z_i^{(h+1)} = σ(W_T (z_i^{(h)} + Σ_{v ∈ children(i)} z_v^{(h)}))
//
// applied bottom-up from the deepest incorporated level to the roots, so
// every intention's representation is aware of its subtree — the paper's
// "hierarchical structure aware" representation.
//
// The H knob (Fig. 7) controls how many levels of the forest participate:
// only intentions with depth < H exist for the model; queries/services
// attached to deeper intentions are re-attached to their depth (H-1)
// ancestor.

#ifndef GARCIA_MODELS_INTENTION_ENCODER_H_
#define GARCIA_MODELS_INTENTION_ENCODER_H_

#include <memory>
#include <vector>

#include "intent/intention_forest.h"
#include "nn/module.h"
#include "nn/ops.h"

namespace garcia::models {

class IntentionEncoder : public nn::Module {
 public:
  /// levels = H; clamped to the forest's actual level count.
  IntentionEncoder(const intent::IntentionForest& forest, size_t dim,
                   size_t levels, core::Rng* rng);

  /// Encodes the whole forest; row i is z_i^T. Rows of intentions deeper
  /// than H-1 are excluded from aggregation (their rows equal their raw
  /// embedding and are never used by callers).
  nn::Tensor Encode() const;

  /// The deepest incorporated depth (= H-1).
  size_t max_depth() const { return levels_ - 1; }
  size_t levels() const { return levels_; }

  /// Re-attaches an intention to its deepest ancestor within the level
  /// budget: returns the node itself when depth(id) < H, else the ancestor
  /// at depth H-1.
  uint32_t Attach(uint32_t intention) const;

  /// Ancestor chain of the (re-attached) intention, truncated to the level
  /// budget — the IGCL positive set P.
  std::vector<uint32_t> PositiveChain(uint32_t intention) const;

  const intent::IntentionForest& forest() const { return forest_; }

 private:
  const intent::IntentionForest& forest_;
  size_t levels_;
  std::unique_ptr<nn::Embedding> embedding_;
  std::unique_ptr<nn::Linear> transform_;  // W_T
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_INTENTION_ENCODER_H_
