// Copyright (c) 2026 GARCIA reproduction authors.
// KGAT baseline (Wang et al., KDD'19), adapted to the service search graph:
// relation-aware attentive propagation (the relation embedding comes from
// the typed edge features) with bi-interaction aggregation.

#ifndef GARCIA_MODELS_KGAT_H_
#define GARCIA_MODELS_KGAT_H_

#include <memory>
#include <string>
#include <vector>

#include "models/baseline_gnn.h"

namespace garcia::models {

class Kgat : public GnnBaseline {
 public:
  explicit Kgat(const TrainConfig& config) : GnnBaseline(config) {}

  std::string name() const override { return "KGAT"; }

 protected:
  void BuildModules(const data::Scenario& s) override;
  nn::Tensor ComputeEmbeddings(const graph::Block& block) override;
  std::vector<nn::Tensor> ExtraParameters() const override;

 private:
  std::unique_ptr<nn::Linear> relation_proj_;  // edge features -> d
  struct Layer {
    std::unique_ptr<nn::Linear> w_sum;   // bi-interaction: W1 (z + agg)
    std::unique_ptr<nn::Linear> w_prod;  // bi-interaction: W2 (z ⊙ agg)
  };
  std::vector<Layer> layers_;
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_KGAT_H_
