#include "models/simgcl.h"

#include <cmath>

namespace garcia::models {

using core::Matrix;
using nn::Tensor;

Tensor SimGcl::NoisyView(const Tensor& z0, core::Rng* rng) const {
  const graph::SearchGraph& g = scenario_->graph;
  std::vector<Tensor> layers;
  Tensor z = z0;
  for (size_t l = 0; l < cfg_.num_layers; ++l) {
    z = GcnPropagate(z, g.edge_src(), g.edge_dst(), g.num_nodes(), nullptr);
    // Sign-aligned uniform noise of magnitude eps per row (SimGCL Eq. 5):
    // z' = z + eps * normalize(u) ⊙ sign(z).
    Matrix noise(z.rows(), z.cols());
    for (size_t i = 0; i < noise.rows(); ++i) {
      double norm = 0.0;
      for (size_t j = 0; j < noise.cols(); ++j) {
        noise.at(i, j) = static_cast<float>(rng->Uniform());
        norm += static_cast<double>(noise.at(i, j)) * noise.at(i, j);
      }
      norm = std::sqrt(std::max(norm, 1e-12));
      for (size_t j = 0; j < noise.cols(); ++j) {
        const float sign = z.value().at(i, j) >= 0.0f ? 1.0f : -1.0f;
        noise.at(i, j) = static_cast<float>(cfg_.simgcl_eps *
                                            (noise.at(i, j) / norm)) *
                         sign;
      }
    }
    z = nn::Add(z, Tensor::Constant(std::move(noise)));
    layers.push_back(z);
  }
  return nn::Average(layers);
}

Tensor SimGcl::AuxiliaryLoss(core::Rng* rng) {
  const graph::SearchGraph& g = scenario_->graph;
  if (g.num_edges() == 0) return Tensor();
  // Noisy views stay full-graph under sampled training (DESIGN.md §5e).
  Tensor z0 = BaseEmbeddings(full_block_);
  Tensor v1 = NoisyView(z0, rng);
  Tensor v2 = NoisyView(z0, rng);

  const size_t n = g.num_nodes();
  const size_t b = std::min(cfg_.cl_batch_size, n);
  if (b < 2) return Tensor();
  auto picks = rng->SampleWithoutReplacement(n, b);
  std::vector<uint32_t> rows(picks.begin(), picks.end());
  std::vector<uint32_t> identity(b);
  for (size_t i = 0; i < b; ++i) identity[i] = static_cast<uint32_t>(i);
  Tensor a = nn::GatherRows(v1, rows);
  Tensor c = nn::GatherRows(v2, rows);
  return nn::Add(nn::InfoNce(a, c, identity, 0.2f),
                 nn::InfoNce(c, a, identity, 0.2f));
}

}  // namespace garcia::models
