// Copyright (c) 2026 GARCIA reproduction authors.
// Shared model interface, hyper-parameters, and training helpers.
//
// Every ranking model (GARCIA and the five baselines) trains on a
// data::Scenario and scores (query, service) examples. Hyper-parameters
// follow the paper's implementation details (Sec. V-B3): embedding size 64,
// batch size 1024, Adam, L=2, H=5, alpha=0.1, beta=0.01, tau=0.1. Defaults
// here are scaled for the ~1000x smaller synthetic datasets (dim 32, higher
// lr); the paper values are noted inline.

#ifndef GARCIA_MODELS_COMMON_H_
#define GARCIA_MODELS_COMMON_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/taskgraph.h"
#include "data/scenario.h"
#include "eval/metrics.h"
#include "nn/optimizer.h"
#include "train/checkpoint.h"

namespace garcia::models {

/// Hyper-parameters shared across models; GARCIA-specific knobs included so
/// ablation benches can toggle them.
struct TrainConfig {
  size_t embedding_dim = 32;  // paper: 64
  size_t num_layers = 2;      // L (paper: 2)
  float learning_rate = 3e-3f;  // paper: 1e-4 at production scale
  size_t batch_size = 1024;   // paper: 1024
  size_t finetune_epochs = 6;
  size_t pretrain_epochs = 4;
  /// Caps steps per epoch so full-graph encodings stay affordable;
  /// 0 = no cap.
  size_t max_batches_per_epoch = 24;
  uint64_t seed = 7;
  /// Worker threads for the kernel execution layer (core/kernels.h).
  /// 0 = serial (no thread pool is created); any value >= 1 routes compute
  /// through ExecutionContext. The parallel backend is bit-identical to
  /// serial, so this changes wall-clock only, never losses or embeddings.
  size_t num_threads = 0;
  /// Lazy op-graph capture + elementwise→reduction fusion in the nn layer
  /// (nn/op_graph.h, DESIGN.md §5i). When true (the default), models run
  /// the forward/backward tape through linearized fused chains — one
  /// sharded kernel pass per producer–consumer chain — instead of one
  /// kernel dispatch per op. Fused execution is bit-identical to eager for
  /// any thread count, so this knob, like num_threads, changes wall-clock
  /// only, never losses or embeddings, and is excluded from
  /// TrainFingerprint.
  bool fuse_ops = true;
  /// Per-destination neighbor fanout for minibatch sampled-subgraph
  /// training (graph::NeighborSampler, DESIGN.md §5e). 0 = full-graph
  /// training (every step encodes the whole graph, the pre-sampling
  /// behavior, bit for bit); >= 1 trains each step on an L-hop block
  /// sampled from that step's batch, keeping at most this many incoming
  /// edges per destination. Predict/Export always use the full graph.
  size_t sample_fanout = 0;
  /// Seed of the dedicated sampler rng stream. Kept separate from `seed`
  /// so turning sampling on never shifts batch order or negative draws.
  uint64_t sample_seed = 1013;
  /// Pipelined training (core/taskgraph.h, DESIGN.md §5j). 0 (the default)
  /// is the legacy barriered loop: each step plans, samples, encodes, and
  /// steps strictly in sequence. >= 1 runs step t+1's planning — rng
  /// draws, NeighborSampler expansion, graph::Block packing — as a
  /// task-graph node overlapping step t's encode/backward GEMMs (the
  /// implementation looks at most one step ahead, so every value >= 1
  /// behaves identically). The lookahead touches only loop state the
  /// compute phase never reads (rng streams, batch iterator), and both rng
  /// streams see the exact draw sequence of the barriered loop, so the
  /// trajectory — parameters, losses, checkpoint bytes — is bit-identical
  /// for any depth and thread count. Like num_threads and fuse_ops, this
  /// changes wall-clock only and is excluded from TrainFingerprint.
  /// (Models whose compute phase itself draws rng — SGL / SimGCL auxiliary
  /// views — ignore the knob and always run barriered.)
  size_t pipeline_depth = 0;

  // Multi-granularity contrastive learning (Eq. 11).
  float tau = 0.1f;    // temperature (paper: 0.1)
  float alpha = 0.1f;  // SECL weight (paper: 0.1)
  float beta = 0.01f;  // IGCL weight (paper: 0.01)
  size_t cl_batch_size = 256;  // entities sampled per CL term per step

  // Intention tree.
  size_t tree_levels = 5;  // H (paper: 5)

  // Ablation toggles (Figs. 3, 4, 7).
  bool use_ktcl = true;
  bool use_secl = true;
  bool use_igcl = true;
  bool use_intention = true;   // false = no intention encoder at all
  bool share_encoders = false;  // true = GARCIA-Share (Fig. 3)
  bool use_attention = true;   // false = uniform 1/deg aggregation
  /// KTCL semantic-relevance scorer for anchor mining: token Jaccard
  /// (default) or the character-n-gram embedding encoder (the paper's
  /// future-work slot for a text model such as BERT).
  bool ktcl_ngram_mining = false;

  // Baseline-specific.
  float ssl_weight = 0.1f;     // SGL / SimGCL auxiliary loss weight
  float edge_dropout = 0.2f;   // SGL view augmentation
  float simgcl_eps = 0.1f;     // SimGCL noise magnitude

  // Serving variant: score with inner product instead of the MLP head
  // (the paper's online deployment, Sec. V-F1).
  bool inner_product_head = false;

  // Crash-safe checkpointing (train/checkpoint.h, DESIGN.md §5h).
  /// Generation directory; empty (the default) disables checkpointing.
  std::string checkpoint_dir;
  /// Write a generation every N completed optimizer steps (counted across
  /// all phases); 0 disables.
  uint64_t checkpoint_every_steps = 0;
  /// Generations kept on disk; older ones are pruned after each write.
  uint64_t checkpoint_keep = 2;
  /// Test-only simulated-crash plan; kNone in production. Like
  /// num_threads, this never affects the training trajectory, so it is
  /// excluded from TrainFingerprint.
  train::CheckpointFaultPlan checkpoint_fault;
};

/// FNV-1a fingerprint of every TrainConfig field that shapes the training
/// trajectory, plus the model name and the scenario dimensions. Stored in
/// each checkpoint; resume under a different fingerprint is refused
/// because the replayed trajectory would silently diverge. Excludes
/// num_threads, fuse_ops, and pipeline_depth (parallel, fused, and
/// pipelined execution are all bit-identical to the serial eager
/// reference) and the checkpoint/fault knobs themselves (cadence may
/// change across restarts).
uint64_t TrainFingerprint(const TrainConfig& cfg, const std::string& model_name,
                          const data::Scenario& scenario);

/// Copies the current parameter values, in order (checkpoint snapshot).
std::vector<core::Matrix> SnapshotParameterValues(
    const std::vector<nn::Tensor>& params);

/// Writes snapshotted values back into the live parameter tensors; shapes
/// must match (the checkpoint was validated against this config's
/// fingerprint, so a mismatch is an internal error).
void RestoreParameterValues(const std::vector<nn::Tensor>& params,
                            const std::vector<core::Matrix>& values);

/// Restores the model/optimizer half of a decoded checkpoint: parameter
/// values and Adam state. Rng streams and iterator position are restored
/// by the caller at its phase-specific resume point.
void RestoreTrainState(const train::TrainCheckpoint& ck,
                       const std::vector<nn::Tensor>& params, nn::Adam* opt);

/// A trained ranking model.
class RankingModel {
 public:
  virtual ~RankingModel() = default;

  virtual std::string name() const = 0;

  /// Trains on the scenario's train split (and uses validation only for
  /// monitoring). Must be called before Predict.
  virtual void Fit(const data::Scenario& scenario) = 0;

  /// Click scores (higher = more likely clicked) for examples.
  virtual std::vector<float> Predict(
      const data::Scenario& scenario,
      const std::vector<data::Example>& examples) = 0;

  /// Embeddings for online serving (queries then services, row-aligned with
  /// ids). Models without an embedding space may return empty matrices.
  virtual core::Matrix ExportQueryEmbeddings(const data::Scenario&) {
    return core::Matrix();
  }
  virtual core::Matrix ExportServiceEmbeddings(const data::Scenario&) {
    return core::Matrix();
  }
};

/// Head/tail/overall metrics of a model on one example slice.
eval::SlicedMetrics EvaluateModel(RankingModel* model,
                                  const data::Scenario& scenario,
                                  const std::vector<data::Example>& examples);

/// Yields shuffled mini-batches of example indices.
class BatchIterator {
 public:
  BatchIterator(size_t num_examples, size_t batch_size, core::Rng* rng);

  /// Next batch; empty when the epoch is exhausted.
  std::vector<uint32_t> Next();

  /// Reshuffles and restarts.
  void Reset();

  size_t batches_per_epoch() const;

  // Checkpoint hooks: the exact mid-epoch position, restorable later.
  const std::vector<uint32_t>& order() const { return order_; }
  size_t cursor() const { return cursor_; }
  /// Restores a snapshotted position. `order` must be a permutation of the
  /// same example count this iterator was built over.
  void Restore(const std::vector<uint32_t>& order, size_t cursor);

 private:
  std::vector<uint32_t> order_;
  size_t batch_size_;
  size_t cursor_ = 0;
  core::Rng* rng_;
};

/// Checkpoint-relevant stochastic state captured when a step is PLANNED
/// rather than read live when its snapshot is written (DESIGN.md §5j).
/// Under pipelined training the next step's lookahead may already be
/// advancing the rng streams and the batch iterator by the time
/// CheckpointManager::AtStepEnd fires, so snapshots read this capture. On
/// the barriered path nothing draws between a step's planning and its end,
/// so the capture equals the live state and the checkpoint bytes are
/// identical either way.
struct PlannedStepState {
  std::vector<core::RngState> rng_streams;
  bool has_iterator = false;
  uint64_t iterator_cursor = 0;
  /// Only captured when the loop's CheckpointManager is enabled — it is
  /// the one per-step copy whose size grows with the training set.
  std::vector<uint32_t> iterator_order;
};

/// Runs one epoch's step stream with optional one-step lookahead.
///
/// `produce(step)` draws everything stochastic about a step (batches,
/// negatives, sampled blocks) plus its PlannedStepState and returns
/// nullopt when the stream is exhausted; `consume(step, work)` runs the
/// step's encode/loss/backward/optimizer phase. Steps run for
/// step = first_step, first_step+1, ... while produce yields work and
/// step < max_steps (0 = unbounded).
///
/// Barriered mode (pipelined = false) interleaves them exactly like the
/// legacy loops: produce(t), consume(t), produce(t+1), ... Pipelined mode
/// hands produce(t+1) to a core::TaskGraph node on `pool` before
/// consume(t) starts, so next-step sampling and block packing overlap this
/// step's GEMMs, and joins it through a core::Promise afterwards — a
/// two-slot double buffer (one Work being consumed, one being produced).
/// Lookahead is never launched past max_steps or after an exhausted
/// produce, so the rng streams see exactly the draws of the barriered
/// loop: produce draws nothing the barriered path would not also draw.
/// With a null/absent pool the task-graph node runs inline at launch,
/// which only moves produce(t+1) before consume(t) — bit-identical as long
/// as consume draws no rng, which is the precondition for enabling
/// pipelining at all (see TrainConfig::pipeline_depth).
///
/// Returns the index one past the last consumed step. Exception-safe: if
/// consume throws (e.g. the checkpoint kill-point harness), the in-flight
/// lookahead is joined before the caller's frame unwinds.
template <typename ProduceFn, typename ConsumeFn>
size_t RunPipelinedSteps(core::ThreadPool* pool, bool pipelined,
                         size_t first_step, size_t max_steps,
                         ProduceFn&& produce, ConsumeFn&& consume) {
  const auto runnable = [max_steps](size_t step) {
    return max_steps == 0 || step < max_steps;
  };
  size_t step = first_step;
  if (!runnable(step)) return step;
  using Work = typename decltype(produce(step))::value_type;
  using Slot = core::Promise<std::optional<Work>>;
  // Joined (WaitAll) before this frame unwinds, so a lookahead launched
  // right before a consume-thrown exception cannot outlive the loop state
  // it captures.
  core::TaskGraph lookahead(pipelined ? pool : nullptr);
  std::optional<Work> work = produce(step);
  while (work.has_value()) {
    std::shared_ptr<Slot> next;
    if (pipelined && runnable(step + 1)) {
      next = std::make_shared<Slot>();
      const size_t next_step = step + 1;
      lookahead.Add(
          [&produce, next, next_step] { next->Set(produce(next_step)); });
    }
    consume(step, *work);
    ++step;
    if (!runnable(step)) break;  // next was never launched past the cap
    work = next != nullptr ? next->Take() : produce(step);
  }
  return step;
}

}  // namespace garcia::models

#endif  // GARCIA_MODELS_COMMON_H_
