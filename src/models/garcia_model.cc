#include "models/garcia_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/logging.h"

namespace garcia::models {

using core::Matrix;
using nn::Tensor;

GarciaModel::GarciaModel(const TrainConfig& config)
    : cfg_(config),
      rng_(config.seed),
      sample_rng_(config.sample_seed),
      exec_(config.num_threads) {
  exec_.set_fusion(config.fuse_ops);
}

GarciaModel::~GarciaModel() = default;

void GarciaModel::Setup(const data::Scenario& s) {
  scenario_ = &s;
  encoded_cache_.reset();  // re-Fit invalidates any post-Fit encoding
  sample_rng_ = core::Rng(cfg_.sample_seed);  // re-Fit restarts the stream
  sampling_ = cfg_.sample_fanout > 0;
  const size_t d = cfg_.embedding_dim;

  if (cfg_.share_encoders) {
    // GARCIA-Share: one unified encoder over the full graph.
    std::vector<uint32_t> all_queries(s.num_queries());
    for (uint32_t q = 0; q < s.num_queries(); ++q) all_queries[q] = q;
    head_sub_.emplace(graph::ExtractQuerySubgraph(s.graph, all_queries));
    tail_sub_.reset();
    head_encoder_ = std::make_unique<GarciaGnnEncoder>(
        head_sub_->graph.num_nodes(), s.graph.attr_dim(), d, cfg_.num_layers,
        &rng_, cfg_.use_attention);
    tail_encoder_.reset();
  } else {
    head_sub_.emplace(
        graph::ExtractQuerySubgraph(s.graph, s.split.head_queries));
    tail_sub_.emplace(
        graph::ExtractQuerySubgraph(s.graph, s.split.tail_queries));
    head_encoder_ = std::make_unique<GarciaGnnEncoder>(
        head_sub_->graph.num_nodes(), s.graph.attr_dim(), d, cfg_.num_layers,
        &rng_, cfg_.use_attention);
    tail_encoder_ = std::make_unique<GarciaGnnEncoder>(
        tail_sub_->graph.num_nodes(), s.graph.attr_dim(), d, cfg_.num_layers,
        &rng_, cfg_.use_attention);
  }

  // Encoder/graph shape invariants, asserted once per Setup instead of on
  // every encode consumer.
  GARCIA_CHECK(head_sub_->graph.finalized());
  GARCIA_CHECK_EQ(head_sub_->graph.attr_dim(), s.graph.attr_dim());
  GARCIA_CHECK_EQ(head_encoder_->num_nodes(), head_sub_->graph.num_nodes());
  GARCIA_CHECK_EQ(head_sub_->global_query_ids.size() + s.num_services(),
                  head_sub_->graph.num_nodes());
  if (!cfg_.share_encoders) {
    GARCIA_CHECK(tail_sub_->graph.finalized());
    GARCIA_CHECK_EQ(tail_sub_->graph.attr_dim(), s.graph.attr_dim());
    GARCIA_CHECK_EQ(tail_encoder_->num_nodes(), tail_sub_->graph.num_nodes());
    GARCIA_CHECK_EQ(tail_sub_->global_query_ids.size() + s.num_services(),
                    tail_sub_->graph.num_nodes());
  }

  if (sampling_) {
    // The optionals' storage is stable, so the samplers may hold graph
    // pointers across the whole Fit.
    head_sampler_.emplace(&head_sub_->graph, cfg_.num_layers,
                          cfg_.sample_fanout);
    if (cfg_.share_encoders) {
      tail_sampler_.reset();
    } else {
      tail_sampler_.emplace(&tail_sub_->graph, cfg_.num_layers,
                            cfg_.sample_fanout);
    }
  } else {
    head_sampler_.reset();
    tail_sampler_.reset();
  }

  if (cfg_.use_intention) {
    intention_encoder_ = std::make_unique<IntentionEncoder>(
        s.forest, d, cfg_.tree_levels, &rng_);
  } else {
    intention_encoder_.reset();
  }

  // Eq. 12: two-layer perceptron on [z_q || z_s].
  click_head_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{2 * d, d, 1}, &rng_);

  anchors_ = MineKtclAnchors(s, cfg_.ktcl_ngram_mining
                                    ? KtclRelevance::kNgramCosine
                                    : KtclRelevance::kTokenJaccard);
  GARCIA_LOG(Debug) << "GARCIA setup: " << anchors_.size()
                    << " KTCL anchor pairs, head nodes "
                    << head_sub_->graph.num_nodes();
}

std::vector<Tensor> GarciaModel::CollectParameters() const {
  std::vector<Tensor> params = head_encoder_->Parameters();
  auto append = [&params](const std::vector<Tensor>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  if (tail_encoder_) append(tail_encoder_->Parameters());
  if (intention_encoder_) append(intention_encoder_->Parameters());
  append(click_head_->Parameters());
  return params;
}

GarciaModel::Encoded GarciaModel::EncodeAll() const {
  Encoded e;
  e.head = head_encoder_->Encode(head_sub_->graph);
  if (cfg_.share_encoders) {
    e.tail = e.head;
  } else {
    e.tail = tail_encoder_->Encode(tail_sub_->graph);
  }
  return e;
}

GarciaModel::SampledBlocks GarciaModel::SampleBlocks(
    const std::vector<uint32_t>& head_seeds,
    const std::vector<uint32_t>& tail_seeds) {
  SampledBlocks blocks;
  if (!head_seeds.empty()) {
    blocks.has_head = true;
    blocks.head = head_sampler_->Sample(head_seeds, &sample_rng_);
  }
  if (!cfg_.share_encoders && !tail_seeds.empty()) {
    blocks.has_tail = true;
    blocks.tail = tail_sampler_->Sample(tail_seeds, &sample_rng_);
  }
  return blocks;
}

GarciaModel::Encoded GarciaModel::EncodeSampled(
    const SampledBlocks& blocks) const {
  Encoded e;
  if (blocks.has_head) {
    e.head = head_encoder_->EncodeBlock(head_sub_->graph, blocks.head);
  }
  if (cfg_.share_encoders) {
    e.tail = e.head;
  } else if (blocks.has_tail) {
    e.tail = tail_encoder_->EncodeBlock(tail_sub_->graph, blocks.tail);
  }
  return e;
}

const GarciaModel::Encoded& GarciaModel::CachedEncoded() const {
  if (!encoded_cache_.has_value()) encoded_cache_ = EncodeAll();
  return *encoded_cache_;
}

std::pair<bool, uint32_t> GarciaModel::QueryRow(uint32_t query) const {
  if (cfg_.share_encoders) {
    return {true, static_cast<uint32_t>(head_sub_->local_query_of[query])};
  }
  if (scenario_->split.is_head[query]) {
    return {true, static_cast<uint32_t>(head_sub_->local_query_of[query])};
  }
  return {false, static_cast<uint32_t>(tail_sub_->local_query_of[query])};
}

uint32_t GarciaModel::ServiceRow(bool head_partition, uint32_t service) const {
  const graph::Subgraph& sub =
      (head_partition || cfg_.share_encoders) ? *head_sub_ : *tail_sub_;
  return sub.graph.ServiceNode(service);
}

GarciaModel::PretrainPlan GarciaModel::PlanPretrainStep(
    const data::Scenario& s, core::Rng* rng, graph::SeedSet* head_seeds,
    graph::SeedSet* tail_seeds) const {
  PretrainPlan plan;

  if (cfg_.use_ktcl) {
    // Query side (Eq. 4): pull each tail query toward its mined head
    // anchor, against in-batch head negatives.
    if (anchors_.size() >= 2) {
      const size_t b = std::min(cfg_.cl_batch_size, anchors_.size());
      auto picks = rng->SampleWithoutReplacement(anchors_.size(), b);
      std::vector<uint32_t> tail_rows, head_rows, targets;
      std::unordered_map<uint32_t, uint32_t> head_pos;
      for (size_t i : picks) {
        const uint32_t tq = anchors_.tail_query[i];
        const uint32_t hq = anchors_.head_query[i];
        tail_rows.push_back(tail_seeds->Map(QueryRow(tq).second));
        auto [it, inserted] =
            head_pos.emplace(hq, static_cast<uint32_t>(head_rows.size()));
        if (inserted) head_rows.push_back(head_seeds->Map(QueryRow(hq).second));
        targets.push_back(it->second);
      }
      if (head_rows.size() >= 2) {
        plan.ktcl_query = true;
        plan.kq_tail_rows = std::move(tail_rows);
        plan.kq_head_rows = std::move(head_rows);
        plan.kq_targets = std::move(targets);
      }
    }

    // Service side (Eq. 5): align the two views of each service.
    const size_t b = std::min<size_t>(cfg_.cl_batch_size, s.num_services());
    if (b >= 2) {
      auto picks = rng->SampleWithoutReplacement(s.num_services(), b);
      plan.ktcl_service = true;
      for (size_t i = 0; i < picks.size(); ++i) {
        const uint32_t svc = static_cast<uint32_t>(picks[i]);
        plan.ks_head_rows.push_back(head_seeds->Map(ServiceRow(true, svc)));
        plan.ks_tail_rows.push_back(tail_seeds->Map(ServiceRow(false, svc)));
      }
    }
  }

  if (cfg_.use_secl && cfg_.alpha > 0.0f) {
    // Eq. 7 anchors z^{(0)} rows against z^{(l)} rows per partition.
    auto plan_partition = [&](size_t n, graph::SeedSet* seeds,
                              std::vector<uint32_t>* rows, bool* fires) {
      const size_t b = std::min<size_t>(cfg_.cl_batch_size, n);
      if (b < 2 || cfg_.num_layers + 1 < 2) return;
      auto picks = rng->SampleWithoutReplacement(n, b);
      *fires = true;
      rows->reserve(b);
      for (size_t p : picks) {
        rows->push_back(seeds->Map(static_cast<uint32_t>(p)));
      }
    };
    plan_partition(head_sub_->graph.num_nodes(), head_seeds,
                   &plan.secl_head_rows, &plan.secl_head);
    if (!cfg_.share_encoders) {
      plan_partition(tail_sub_->graph.num_nodes(), tail_seeds,
                     &plan.secl_tail_rows, &plan.secl_tail);
    }
  }

  if (cfg_.use_igcl && cfg_.beta > 0.0f && intention_encoder_ != nullptr) {
    // Entity batch: half queries, half services, routed to the partition
    // that carries their representation.
    const size_t half = std::max<size_t>(1, cfg_.cl_batch_size / 2);
    const size_t nq = std::min(half, s.num_queries());
    const size_t ns = std::min(half, s.num_services());
    auto q_picks = rng->SampleWithoutReplacement(s.num_queries(), nq);
    for (size_t qi : q_picks) {
      const uint32_t q = static_cast<uint32_t>(qi);
      auto [is_head, row] = QueryRow(q);
      if (is_head) {
        plan.igcl_head_rows.push_back(head_seeds->Map(row));
        plan.igcl_head_intents.push_back(s.query_intent[q]);
      } else {
        plan.igcl_tail_rows.push_back(tail_seeds->Map(row));
        plan.igcl_tail_intents.push_back(s.query_intent[q]);
      }
    }
    auto s_picks = rng->SampleWithoutReplacement(s.num_services(), ns);
    for (size_t si : s_picks) {
      const uint32_t svc = static_cast<uint32_t>(si);
      // Alternate partitions so both service views receive the signal.
      const bool head_side = cfg_.share_encoders || (svc % 2 == 0);
      if (head_side) {
        plan.igcl_head_rows.push_back(head_seeds->Map(ServiceRow(true, svc)));
        plan.igcl_head_intents.push_back(s.service_intent[svc]);
      } else {
        plan.igcl_tail_rows.push_back(tail_seeds->Map(ServiceRow(false, svc)));
        plan.igcl_tail_intents.push_back(s.service_intent[svc]);
      }
    }
    plan.igcl = true;
  }

  return plan;
}

Tensor GarciaModel::KtclLossFromPlan(const PretrainPlan& plan,
                                     const Encoded& e) const {
  std::vector<Tensor> terms;
  if (plan.ktcl_query) {
    Tensor anchors_t = nn::GatherRows(e.tail.readout, plan.kq_tail_rows);
    Tensor cands_t = nn::GatherRows(e.head.readout, plan.kq_head_rows);
    terms.push_back(nn::InfoNce(anchors_t, cands_t, plan.kq_targets,
                                cfg_.tau));
  }
  if (plan.ktcl_service) {
    const size_t b = plan.ks_head_rows.size();
    std::vector<uint32_t> identity(b);
    for (size_t i = 0; i < b; ++i) identity[i] = static_cast<uint32_t>(i);
    Tensor zh = nn::GatherRows(e.head.readout, plan.ks_head_rows);
    Tensor zt = nn::GatherRows(e.tail.readout, plan.ks_tail_rows);
    terms.push_back(nn::Add(nn::InfoNce(zh, zt, identity, cfg_.tau),
                            nn::InfoNce(zt, zh, identity, cfg_.tau)));
  }
  if (terms.empty()) return Tensor::Constant(Matrix(1, 1));
  Tensor total = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) total = nn::Add(total, terms[i]);
  return total;
}

Tensor GarciaModel::SeclLossFromPlan(const PretrainPlan& plan,
                                     const Encoded& e) const {
  // Eq. 7: anchor z^{(0)}, positives z^{(l)} of the same node, in-batch
  // negatives; applied per partition, averaged over layers.
  std::vector<Tensor> terms;
  auto add_partition = [&](const GnnOutput& out,
                           const std::vector<uint32_t>& rows) {
    const size_t b = rows.size();
    std::vector<uint32_t> identity(b);
    for (size_t i = 0; i < b; ++i) identity[i] = static_cast<uint32_t>(i);
    Tensor z0 = nn::GatherRows(out.layers[0], rows);
    std::vector<Tensor> per_layer;
    for (size_t l = 1; l < out.layers.size(); ++l) {
      Tensor zl = nn::GatherRows(out.layers[l], rows);
      per_layer.push_back(nn::InfoNce(z0, zl, identity, cfg_.tau));
    }
    terms.push_back(nn::Average(per_layer));
  };
  if (plan.secl_head) add_partition(e.head, plan.secl_head_rows);
  if (plan.secl_tail) add_partition(e.tail, plan.secl_tail_rows);

  if (terms.empty()) return Tensor::Constant(Matrix(1, 1));
  Tensor total = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) total = nn::Add(total, terms[i]);
  return total;
}

Tensor GarciaModel::IgclLossFromPlan(const PretrainPlan& plan,
                                     const Encoded& e) const {
  GARCIA_CHECK(intention_encoder_ != nullptr);
  const std::vector<uint32_t>& head_rows = plan.igcl_head_rows;
  const std::vector<uint32_t>& tail_rows = plan.igcl_tail_rows;

  // Assemble the entity embedding batch (head rows then tail rows).
  Tensor entity_emb;
  std::vector<uint32_t> intents = plan.igcl_head_intents;
  intents.insert(intents.end(), plan.igcl_tail_intents.begin(),
                 plan.igcl_tail_intents.end());
  if (intents.empty()) return Tensor::Constant(Matrix(1, 1));
  if (!head_rows.empty() && !tail_rows.empty()) {
    entity_emb = nn::ConcatRows(nn::GatherRows(e.head.readout, head_rows),
                                nn::GatherRows(e.tail.readout, tail_rows));
  } else if (!head_rows.empty()) {
    entity_emb = nn::GatherRows(e.head.readout, head_rows);
  } else {
    entity_emb = nn::GatherRows(e.tail.readout, tail_rows);
  }

  IgclBatch batch = BuildIgclBatch(*intention_encoder_, intents);
  if (batch.num_pairs() == 0 || batch.candidate_ids.size() < 2) {
    return Tensor::Constant(Matrix(1, 1));
  }
  Tensor intent_table = intention_encoder_->Encode();
  Tensor anchors_t = nn::GatherRows(entity_emb, batch.anchor_rows);
  Tensor cands = nn::GatherRows(intent_table, batch.candidate_ids);
  return nn::MaskedInfoNce(anchors_t, cands, batch.targets, batch.mask,
                           cfg_.tau);
}

Tensor GarciaModel::PretrainLossFromPlan(const PretrainPlan& plan,
                                         const Encoded& e) const {
  // Eq. 11: L_P = L_KTCL + alpha L_SECL + beta L_IGCL.
  Tensor total = Tensor::Constant(Matrix(1, 1));
  if (cfg_.use_ktcl) total = nn::Add(total, KtclLossFromPlan(plan, e));
  if (cfg_.use_secl && cfg_.alpha > 0.0f) {
    total = nn::Add(total, nn::Scale(SeclLossFromPlan(plan, e), cfg_.alpha));
  }
  if (cfg_.use_igcl && cfg_.beta > 0.0f && intention_encoder_ != nullptr) {
    total = nn::Add(total, nn::Scale(IgclLossFromPlan(plan, e), cfg_.beta));
  }
  return total;
}

GarciaModel::LogitsPlan GarciaModel::PlanBatchLogits(
    const std::vector<data::Example>& examples,
    const std::vector<uint32_t>& batch, graph::SeedSet* head_seeds,
    graph::SeedSet* tail_seeds) const {
  LogitsPlan plan;
  // The other-partition view rows only seed the block when the
  // inner-product head actually averages the two service views.
  const bool wants_other = cfg_.inner_product_head && !cfg_.share_encoders;
  std::vector<uint32_t> head_order, tail_order;
  for (uint32_t bi : batch) {
    const data::Example& ex = examples[bi];
    auto [is_head, qrow] = QueryRow(ex.query);
    if (is_head) {
      plan.hq_rows.push_back(head_seeds->Map(qrow));
      plan.hs_rows.push_back(head_seeds->Map(ServiceRow(true, ex.service)));
      if (wants_other) {
        plan.hs_other_rows.push_back(
            tail_seeds->Map(ServiceRow(false, ex.service)));
      }
      head_order.push_back(bi);
    } else {
      plan.tq_rows.push_back(tail_seeds->Map(qrow));
      plan.ts_rows.push_back(tail_seeds->Map(ServiceRow(false, ex.service)));
      if (wants_other) {
        plan.ts_other_rows.push_back(
            head_seeds->Map(ServiceRow(true, ex.service)));
      }
      tail_order.push_back(bi);
    }
  }
  plan.order.reserve(batch.size());
  plan.order.insert(plan.order.end(), head_order.begin(), head_order.end());
  plan.order.insert(plan.order.end(), tail_order.begin(), tail_order.end());
  return plan;
}

Tensor GarciaModel::LogitsFromPlan(const LogitsPlan& plan,
                                   const Encoded& e) const {
  // With the online inner-product head, services must be scored through
  // the SAME single embedding that is exported for retrieval (the mean of
  // the two aligned views) — otherwise training and serving diverge.
  auto make_side = [&](bool head_partition) -> Tensor {
    const GnnOutput& out = head_partition ? e.head : e.tail;
    const std::vector<uint32_t>& q = head_partition ? plan.hq_rows
                                                    : plan.tq_rows;
    const std::vector<uint32_t>& sv = head_partition ? plan.hs_rows
                                                     : plan.ts_rows;
    Tensor zq = nn::GatherRows(out.readout, q);
    Tensor zs = nn::GatherRows(out.readout, sv);
    if (cfg_.inner_product_head && !cfg_.share_encoders) {
      const GnnOutput& other = head_partition ? e.tail : e.head;
      const std::vector<uint32_t>& sv_other =
          head_partition ? plan.hs_other_rows : plan.ts_other_rows;
      Tensor z_other = nn::GatherRows(other.readout, sv_other);
      zs = nn::Scale(nn::Add(zs, z_other), 0.5f);
    }
    if (cfg_.inner_product_head) return nn::RowDot(zq, zs);
    return click_head_->Forward(nn::ConcatCols(zq, zs));
  };

  const bool has_head = !plan.hq_rows.empty();
  const bool has_tail = !plan.tq_rows.empty();
  if (has_head && has_tail) {
    return nn::ConcatRows(make_side(true), make_side(false));
  }
  if (has_head) return make_side(true);
  GARCIA_CHECK(has_tail);
  return make_side(false);
}

void GarciaModel::Fit(const data::Scenario& s) {
  core::ScopedExecution exec_scope(&exec_);
  Setup(s);
  std::vector<Tensor> params = CollectParameters();

  // Crash-safe checkpointing (DESIGN.md §5h). A snapshot is taken after
  // the optimizer step, so restoring one and re-entering the loop at the
  // recorded position replays the uninterrupted trajectory bit for bit:
  // every stochastic draw flows through rng_/sample_rng_, whose positions
  // the snapshot captures. The restore point is phase-specific — the saved
  // rng state postdates all construction-time draws of that phase, so it
  // must be applied after them (for fine-tuning, after the BatchIterator
  // constructor consumes its shuffle).
  train::CheckpointManager ckpt(train::CheckpointOptions{
      cfg_.checkpoint_dir, cfg_.checkpoint_every_steps, cfg_.checkpoint_keep,
      TrainFingerprint(cfg_, name(), s), cfg_.checkpoint_fault});
  std::optional<train::TrainCheckpoint> resume = ckpt.Resume();
  uint64_t global_step = resume ? resume->global_step : 0;
  const bool resume_pretrain = resume && resume->phase == 0;
  const bool resume_finetune = resume && resume->phase == 1;
  if (resume) {
    GARCIA_CHECK_EQ(resume->rng_streams.size(), 2u)
        << "GARCIA checkpoints carry {train, sampler} rng streams";
    GARCIA_CHECK_EQ(resume->diagnostics.size(), 3u);
    first_pretrain_loss_ = resume->diagnostics[0];
    last_pretrain_loss_ = resume->diagnostics[1];
    last_finetune_loss_ = resume->diagnostics[2];
  }
  auto restore_rngs = [&] {
    rng_.RestoreState(resume->rng_streams[0]);
    sample_rng_.RestoreState(resume->rng_streams[1]);
  };
  // Rng/iterator state is captured when a step is PLANNED, not when its
  // snapshot is written: under pipelining the next step's lookahead may
  // already be advancing both by the time AtStepEnd fires (see
  // PlannedStepState). Nothing draws between planning and the step end on
  // the barriered path, so the capture is the same bytes either way.
  auto capture_state = [&](BatchIterator* it) {
    PlannedStepState st;
    st.rng_streams = {rng_.ExportState(), sample_rng_.ExportState()};
    if (it != nullptr) {
      st.has_iterator = true;
      st.iterator_cursor = it->cursor();
      if (ckpt.enabled()) st.iterator_order = it->order();
    }
    return st;
  };
  auto snapshot = [&](uint32_t phase, uint64_t epoch, uint64_t step_in_epoch,
                      nn::Adam* opt, const PlannedStepState& planned) {
    train::TrainCheckpoint ck;
    ck.phase = phase;
    ck.epoch = epoch;
    ck.step_in_epoch = step_in_epoch;
    ck.diagnostics = {first_pretrain_loss_, last_pretrain_loss_,
                      last_finetune_loss_};
    ck.params = SnapshotParameterValues(params);
    nn::AdamState adam = opt->ExportState();
    ck.adam_t = adam.t;
    ck.adam_m = std::move(adam.m);
    ck.adam_v = std::move(adam.v);
    ck.rng_streams = planned.rng_streams;
    if (planned.has_iterator) {
      ck.has_iterator = true;
      ck.iterator_cursor = planned.iterator_cursor;
      ck.iterator_order = planned.iterator_order;
    }
    return ck;
  };
  const bool pipelined = cfg_.pipeline_depth > 0;

  // Each step plans (all rng draws), encodes (full graph or a block from
  // the plan's seed rows), then evaluates the loss against the plan. When
  // encoders are shared, head and tail rows live in one space, so both
  // plan sides feed a single seed set.
  auto plan_seeds = [this](graph::SeedSet* head_store,
                           graph::SeedSet* tail_store) -> graph::SeedSet* {
    (void)head_store;
    return cfg_.share_encoders ? head_store : tail_store;
  };

  // ---- Pre-training (Sec. IV-C1) ----
  // A phase-1 checkpoint means pre-training already completed; its work
  // is baked into the restored parameters, so the whole phase is skipped.
  const bool any_cl = cfg_.use_ktcl || cfg_.use_secl || cfg_.use_igcl;
  if (any_cl && cfg_.pretrain_epochs > 0 && !resume_finetune) {
    nn::Adam opt(params, cfg_.learning_rate);
    const size_t steps = std::max<size_t>(1, cfg_.max_batches_per_epoch / 2);
    size_t start_epoch = 0;
    size_t start_step = 0;
    if (resume_pretrain) {
      RestoreTrainState(*resume, params, &opt);
      restore_rngs();
      start_epoch = resume->epoch;
      start_step = resume->step_in_epoch;
      if (start_step >= steps) {  // snapshot landed on an epoch boundary
        ++start_epoch;
        start_step = 0;
      }
    }
    // One pre-training step's planned work: the plan (every rng_ draw of
    // the step), the sampled blocks (every sample_rng_ draw), and the
    // checkpoint state captured right after both.
    struct PretrainWork {
      PretrainPlan plan;
      SampledBlocks blocks;
      PlannedStepState state;
    };
    for (size_t epoch = start_epoch; epoch < cfg_.pretrain_epochs; ++epoch) {
      double epoch_loss = 0.0;
      const size_t first = (epoch == start_epoch) ? start_step : 0;
      auto produce = [&](size_t) -> std::optional<PretrainWork> {
        PretrainWork w;
        graph::SeedSet head_seeds(!sampling_);
        graph::SeedSet tail_store(!sampling_);
        graph::SeedSet* tail_seeds = plan_seeds(&head_seeds, &tail_store);
        w.plan = PlanPretrainStep(s, &rng_, &head_seeds, tail_seeds);
        if (sampling_) {
          w.blocks = SampleBlocks(head_seeds.seeds(), tail_seeds->seeds());
        }
        w.state = capture_state(nullptr);
        return w;
      };
      auto consume = [&](size_t step, PretrainWork& w) {
        opt.ZeroGrad();
        Encoded e = sampling_ ? EncodeSampled(w.blocks) : EncodeAll();
        Tensor loss = PretrainLossFromPlan(w.plan, e);
        loss.Backward();
        nn::ClipGradNorm(params, 5.0);
        opt.Step();
        epoch_loss += loss.scalar();
        if (epoch == 0 && step == 0) first_pretrain_loss_ = loss.scalar();
        last_pretrain_loss_ = loss.scalar();
        ++global_step;
        ckpt.AtStepEnd(global_step, [&] {
          return snapshot(/*phase=*/0, epoch, step + 1, &opt, w.state);
        });
      };
      RunPipelinedSteps(exec_.pool(), pipelined, first, steps, produce,
                        consume);
      GARCIA_LOG(Debug) << name() << " pretrain epoch " << epoch
                        << " loss=" << epoch_loss / steps;
    }
  }

  // ---- Fine-tuning (Sec. IV-C2): pre-trained parameters initialize the
  // search-task training. ----
  nn::Adam opt(params, cfg_.learning_rate);
  BatchIterator it(s.train.size(), cfg_.batch_size, &rng_);
  size_t start_epoch = 0;
  size_t start_steps = 0;
  bool mid_epoch_resume = false;
  if (resume_finetune) {
    // The snapshot postdates the iterator constructor, so the shuffle it
    // just consumed is overwritten here along with the rng positions.
    RestoreTrainState(*resume, params, &opt);
    restore_rngs();
    GARCIA_CHECK(resume->has_iterator);
    it.Restore(resume->iterator_order, resume->iterator_cursor);
    start_epoch = resume->epoch;
    start_steps = resume->step_in_epoch;
    mid_epoch_resume = true;
  }
  // One fine-tuning step's planned work (see PretrainWork above; the batch
  // rides along for the label rows).
  struct FinetuneWork {
    std::vector<uint32_t> batch;
    LogitsPlan plan;
    SampledBlocks blocks;
    PlannedStepState state;
  };
  for (size_t epoch = start_epoch; epoch < cfg_.finetune_epochs; ++epoch) {
    // The resumed epoch continues from the restored iterator position; a
    // Reset here would burn an extra shuffle the uninterrupted run never
    // drew. (A snapshot taken on the last step of an epoch re-enters here,
    // produces an empty batch immediately, and resets for the next epoch —
    // exactly the uninterrupted order.)
    size_t first = 0;
    if (mid_epoch_resume) {
      mid_epoch_resume = false;
      first = start_steps;
    } else {
      it.Reset();
    }
    double epoch_loss = 0.0;
    auto produce = [&](size_t) -> std::optional<FinetuneWork> {
      FinetuneWork w;
      w.batch = it.Next();
      if (w.batch.empty()) return std::nullopt;
      graph::SeedSet head_seeds(!sampling_);
      graph::SeedSet tail_store(!sampling_);
      graph::SeedSet* tail_seeds = plan_seeds(&head_seeds, &tail_store);
      w.plan = PlanBatchLogits(s.train, w.batch, &head_seeds, tail_seeds);
      if (sampling_) {
        w.blocks = SampleBlocks(head_seeds.seeds(), tail_seeds->seeds());
      }
      w.state = capture_state(&it);
      return w;
    };
    auto consume = [&](size_t step, FinetuneWork& w) {
      opt.ZeroGrad();
      Encoded e = sampling_ ? EncodeSampled(w.blocks) : EncodeAll();
      Tensor logits = LogitsFromPlan(w.plan, e);
      Matrix labels(w.plan.order.size(), 1);
      for (size_t i = 0; i < w.plan.order.size(); ++i) {
        labels.at(i, 0) = s.train[w.plan.order[i]].label;
      }
      Tensor loss = nn::BceWithLogits(logits, labels);
      loss.Backward();
      nn::ClipGradNorm(params, 5.0);
      opt.Step();
      epoch_loss += loss.scalar();
      last_finetune_loss_ = loss.scalar();
      ++global_step;
      ckpt.AtStepEnd(global_step, [&] {
        return snapshot(/*phase=*/1, epoch, step + 1, &opt, w.state);
      });
    };
    const size_t steps =
        RunPipelinedSteps(exec_.pool(), pipelined, first,
                          cfg_.max_batches_per_epoch, produce, consume);
    GARCIA_LOG(Debug) << name() << " finetune epoch " << epoch
                      << " loss=" << (steps ? epoch_loss / steps : 0.0);
  }
  fitted_ = true;
}

std::vector<float> GarciaModel::Predict(
    const data::Scenario& s, const std::vector<data::Example>& examples) {
  GARCIA_CHECK(fitted_) << "Fit must run before Predict";
  GARCIA_CHECK(scenario_ == &s) << "Predict on a different scenario";
  if (examples.empty()) return {};
  core::ScopedExecution exec_scope(&exec_);
  const Encoded& e = CachedEncoded();
  std::vector<uint32_t> batch(examples.size());
  for (size_t i = 0; i < batch.size(); ++i) batch[i] = static_cast<uint32_t>(i);
  // Inference always scores against the cached full-graph pass, so the
  // plan rows stay partition-local (identity seed sets).
  graph::SeedSet head_seeds(/*identity=*/true);
  graph::SeedSet tail_seeds(/*identity=*/true);
  LogitsPlan plan = PlanBatchLogits(examples, batch, &head_seeds, &tail_seeds);
  Tensor logits = LogitsFromPlan(plan, e);
  std::vector<float> scores(examples.size(), 0.0f);
  for (size_t r = 0; r < plan.order.size(); ++r) {
    scores[plan.order[r]] = nn::StableSigmoid(logits.value().at(r, 0));
  }
  return scores;
}

core::Matrix GarciaModel::ExportQueryEmbeddings(const data::Scenario& s) {
  GARCIA_CHECK(fitted_);
  GARCIA_CHECK(scenario_ == &s);
  core::ScopedExecution exec_scope(&exec_);
  const Encoded& e = CachedEncoded();
  Matrix out(s.num_queries(), cfg_.embedding_dim);
  for (uint32_t q = 0; q < s.num_queries(); ++q) {
    auto [is_head, row] = QueryRow(q);
    const Matrix& src =
        is_head ? e.head.readout.value() : e.tail.readout.value();
    out.CopyRowFrom(src, row, q);
  }
  return out;
}

core::Matrix GarciaModel::ExportServiceEmbeddings(const data::Scenario& s) {
  GARCIA_CHECK(fitted_);
  GARCIA_CHECK(scenario_ == &s);
  core::ScopedExecution exec_scope(&exec_);
  const Encoded& e = CachedEncoded();
  Matrix out(s.num_services(), cfg_.embedding_dim);
  for (uint32_t svc = 0; svc < s.num_services(); ++svc) {
    const uint32_t hrow = ServiceRow(true, svc);
    if (cfg_.share_encoders) {
      out.CopyRowFrom(e.head.readout.value(), hrow, svc);
      continue;
    }
    // Services carry two aligned views (KTCL, Eq. 5); serve their mean.
    const uint32_t trow = ServiceRow(false, svc);
    for (size_t k = 0; k < cfg_.embedding_dim; ++k) {
      out.at(svc, k) = 0.5f * (e.head.readout.value().at(hrow, k) +
                               e.tail.readout.value().at(trow, k));
    }
  }
  return out;
}

}  // namespace garcia::models
