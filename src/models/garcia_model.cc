#include "models/garcia_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "core/logging.h"

namespace garcia::models {

using core::Matrix;
using nn::Tensor;

GarciaModel::GarciaModel(const TrainConfig& config)
    : cfg_(config), rng_(config.seed), exec_(config.num_threads) {}

GarciaModel::~GarciaModel() = default;

void GarciaModel::Setup(const data::Scenario& s) {
  scenario_ = &s;
  encoded_cache_.reset();  // re-Fit invalidates any post-Fit encoding
  const size_t d = cfg_.embedding_dim;

  if (cfg_.share_encoders) {
    // GARCIA-Share: one unified encoder over the full graph.
    std::vector<uint32_t> all_queries(s.num_queries());
    for (uint32_t q = 0; q < s.num_queries(); ++q) all_queries[q] = q;
    head_sub_.emplace(graph::ExtractQuerySubgraph(s.graph, all_queries));
    tail_sub_.reset();
    head_encoder_ = std::make_unique<GarciaGnnEncoder>(
        head_sub_->graph.num_nodes(), s.graph.attr_dim(), d, cfg_.num_layers,
        &rng_, cfg_.use_attention);
    tail_encoder_.reset();
  } else {
    head_sub_.emplace(
        graph::ExtractQuerySubgraph(s.graph, s.split.head_queries));
    tail_sub_.emplace(
        graph::ExtractQuerySubgraph(s.graph, s.split.tail_queries));
    head_encoder_ = std::make_unique<GarciaGnnEncoder>(
        head_sub_->graph.num_nodes(), s.graph.attr_dim(), d, cfg_.num_layers,
        &rng_, cfg_.use_attention);
    tail_encoder_ = std::make_unique<GarciaGnnEncoder>(
        tail_sub_->graph.num_nodes(), s.graph.attr_dim(), d, cfg_.num_layers,
        &rng_, cfg_.use_attention);
  }

  if (cfg_.use_intention) {
    intention_encoder_ = std::make_unique<IntentionEncoder>(
        s.forest, d, cfg_.tree_levels, &rng_);
  } else {
    intention_encoder_.reset();
  }

  // Eq. 12: two-layer perceptron on [z_q || z_s].
  click_head_ = std::make_unique<nn::Mlp>(
      std::vector<size_t>{2 * d, d, 1}, &rng_);

  anchors_ = MineKtclAnchors(s, cfg_.ktcl_ngram_mining
                                    ? KtclRelevance::kNgramCosine
                                    : KtclRelevance::kTokenJaccard);
  GARCIA_LOG(Debug) << "GARCIA setup: " << anchors_.size()
                    << " KTCL anchor pairs, head nodes "
                    << head_sub_->graph.num_nodes();
}

GarciaModel::Encoded GarciaModel::EncodeAll() const {
  Encoded e;
  e.head = head_encoder_->Encode(head_sub_->graph);
  if (cfg_.share_encoders) {
    e.tail = e.head;
  } else {
    e.tail = tail_encoder_->Encode(tail_sub_->graph);
  }
  return e;
}

const GarciaModel::Encoded& GarciaModel::CachedEncoded() const {
  if (!encoded_cache_.has_value()) encoded_cache_ = EncodeAll();
  return *encoded_cache_;
}

std::pair<bool, uint32_t> GarciaModel::QueryRow(uint32_t query) const {
  if (cfg_.share_encoders) {
    return {true, static_cast<uint32_t>(head_sub_->local_query_of[query])};
  }
  if (scenario_->split.is_head[query]) {
    return {true, static_cast<uint32_t>(head_sub_->local_query_of[query])};
  }
  return {false, static_cast<uint32_t>(tail_sub_->local_query_of[query])};
}

uint32_t GarciaModel::ServiceRow(bool head_partition, uint32_t service) const {
  const graph::Subgraph& sub =
      (head_partition || cfg_.share_encoders) ? *head_sub_ : *tail_sub_;
  return sub.graph.ServiceNode(service);
}

Tensor GarciaModel::KtclLoss(const data::Scenario& s, const Encoded& e,
                             core::Rng* rng) const {
  std::vector<Tensor> terms;

  // Query side (Eq. 4): pull each tail query toward its mined head anchor,
  // against in-batch head negatives.
  if (anchors_.size() >= 2) {
    const size_t b = std::min(cfg_.cl_batch_size, anchors_.size());
    auto picks = rng->SampleWithoutReplacement(anchors_.size(), b);
    std::vector<uint32_t> tail_rows;
    std::vector<uint32_t> head_rows;  // deduped candidate rows
    std::vector<uint32_t> targets;
    std::unordered_map<uint32_t, uint32_t> head_pos;
    for (size_t i : picks) {
      const uint32_t tq = anchors_.tail_query[i];
      const uint32_t hq = anchors_.head_query[i];
      tail_rows.push_back(QueryRow(tq).second);
      auto [it, inserted] =
          head_pos.emplace(hq, static_cast<uint32_t>(head_rows.size()));
      if (inserted) head_rows.push_back(QueryRow(hq).second);
      targets.push_back(it->second);
    }
    if (head_rows.size() >= 2) {
      Tensor anchors_t = nn::GatherRows(e.tail.readout, tail_rows);
      Tensor cands_t = nn::GatherRows(e.head.readout, head_rows);
      terms.push_back(nn::InfoNce(anchors_t, cands_t, targets, cfg_.tau));
    }
  }

  // Service side (Eq. 5): align the two views of each service.
  {
    const size_t b =
        std::min<size_t>(cfg_.cl_batch_size, s.num_services());
    if (b >= 2) {
      auto picks = rng->SampleWithoutReplacement(s.num_services(), b);
      std::vector<uint32_t> head_rows, tail_rows, identity;
      for (size_t i = 0; i < picks.size(); ++i) {
        head_rows.push_back(
            ServiceRow(true, static_cast<uint32_t>(picks[i])));
        tail_rows.push_back(
            ServiceRow(false, static_cast<uint32_t>(picks[i])));
        identity.push_back(static_cast<uint32_t>(i));
      }
      Tensor zh = nn::GatherRows(e.head.readout, head_rows);
      Tensor zt = nn::GatherRows(e.tail.readout, tail_rows);
      terms.push_back(nn::Add(nn::InfoNce(zh, zt, identity, cfg_.tau),
                              nn::InfoNce(zt, zh, identity, cfg_.tau)));
    }
  }

  if (terms.empty()) return Tensor::Constant(Matrix(1, 1));
  Tensor total = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) total = nn::Add(total, terms[i]);
  return total;
}

Tensor GarciaModel::SeclLoss(const Encoded& e, core::Rng* rng) const {
  // Eq. 7: anchor z^{(0)}, positives z^{(l)} of the same node, in-batch
  // negatives; applied per partition, averaged over layers.
  std::vector<Tensor> terms;
  auto add_partition = [&](const GnnOutput& out) {
    const size_t n = out.readout.rows();
    const size_t b = std::min<size_t>(cfg_.cl_batch_size, n);
    if (b < 2 || out.layers.size() < 2) return;
    auto picks = rng->SampleWithoutReplacement(n, b);
    std::vector<uint32_t> rows(picks.begin(), picks.end());
    std::vector<uint32_t> identity(b);
    for (size_t i = 0; i < b; ++i) identity[i] = static_cast<uint32_t>(i);
    Tensor z0 = nn::GatherRows(out.layers[0], rows);
    std::vector<Tensor> per_layer;
    for (size_t l = 1; l < out.layers.size(); ++l) {
      Tensor zl = nn::GatherRows(out.layers[l], rows);
      per_layer.push_back(nn::InfoNce(z0, zl, identity, cfg_.tau));
    }
    terms.push_back(nn::Average(per_layer));
  };
  add_partition(e.head);
  if (!cfg_.share_encoders) add_partition(e.tail);

  if (terms.empty()) return Tensor::Constant(Matrix(1, 1));
  Tensor total = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) total = nn::Add(total, terms[i]);
  return total;
}

Tensor GarciaModel::IgclLoss(const data::Scenario& s, const Encoded& e,
                             core::Rng* rng) const {
  GARCIA_CHECK(intention_encoder_ != nullptr);
  // Sample an entity batch: half queries, half services; gather their
  // readout rows from the proper partition.
  const size_t half = std::max<size_t>(1, cfg_.cl_batch_size / 2);
  const size_t nq = std::min(half, s.num_queries());
  const size_t ns = std::min(half, s.num_services());

  std::vector<uint32_t> head_rows, tail_rows;
  std::vector<uint32_t> intents_head, intents_tail;
  auto q_picks = rng->SampleWithoutReplacement(s.num_queries(), nq);
  for (size_t qi : q_picks) {
    const uint32_t q = static_cast<uint32_t>(qi);
    auto [is_head, row] = QueryRow(q);
    if (is_head) {
      head_rows.push_back(row);
      intents_head.push_back(s.query_intent[q]);
    } else {
      tail_rows.push_back(row);
      intents_tail.push_back(s.query_intent[q]);
    }
  }
  auto s_picks = rng->SampleWithoutReplacement(s.num_services(), ns);
  for (size_t si : s_picks) {
    const uint32_t svc = static_cast<uint32_t>(si);
    // Alternate partitions so both service views receive the signal.
    const bool head_side = cfg_.share_encoders || (svc % 2 == 0);
    if (head_side) {
      head_rows.push_back(ServiceRow(true, svc));
      intents_head.push_back(s.service_intent[svc]);
    } else {
      tail_rows.push_back(ServiceRow(false, svc));
      intents_tail.push_back(s.service_intent[svc]);
    }
  }

  // Assemble the entity embedding batch (head rows then tail rows).
  Tensor entity_emb;
  std::vector<uint32_t> intents;
  if (!head_rows.empty() && !tail_rows.empty()) {
    entity_emb = nn::ConcatRows(nn::GatherRows(e.head.readout, head_rows),
                                nn::GatherRows(e.tail.readout, tail_rows));
  } else if (!head_rows.empty()) {
    entity_emb = nn::GatherRows(e.head.readout, head_rows);
  } else {
    entity_emb = nn::GatherRows(e.tail.readout, tail_rows);
  }
  intents = intents_head;
  intents.insert(intents.end(), intents_tail.begin(), intents_tail.end());
  if (intents.empty()) return Tensor::Constant(Matrix(1, 1));

  IgclBatch batch = BuildIgclBatch(*intention_encoder_, intents);
  if (batch.num_pairs() == 0 || batch.candidate_ids.size() < 2) {
    return Tensor::Constant(Matrix(1, 1));
  }
  Tensor intent_table = intention_encoder_->Encode();
  Tensor anchors_t = nn::GatherRows(entity_emb, batch.anchor_rows);
  Tensor cands = nn::GatherRows(intent_table, batch.candidate_ids);
  return nn::MaskedInfoNce(anchors_t, cands, batch.targets, batch.mask,
                           cfg_.tau);
}

Tensor GarciaModel::PretrainLoss(const data::Scenario& s, const Encoded& e,
                                 core::Rng* rng) {
  // Eq. 11: L_P = L_KTCL + alpha L_SECL + beta L_IGCL.
  Tensor total = Tensor::Constant(Matrix(1, 1));
  if (cfg_.use_ktcl) total = nn::Add(total, KtclLoss(s, e, rng));
  if (cfg_.use_secl && cfg_.alpha > 0.0f) {
    total = nn::Add(total, nn::Scale(SeclLoss(e, rng), cfg_.alpha));
  }
  if (cfg_.use_igcl && cfg_.beta > 0.0f && intention_encoder_ != nullptr) {
    total = nn::Add(total, nn::Scale(IgclLoss(s, e, rng), cfg_.beta));
  }
  return total;
}

Tensor GarciaModel::BatchLogits(const std::vector<data::Example>& examples,
                                const std::vector<uint32_t>& batch,
                                const Encoded& e,
                                std::vector<uint32_t>* order) const {
  std::vector<uint32_t> hq_rows, hs_rows, tq_rows, ts_rows;
  std::vector<uint32_t> head_order, tail_order;
  for (uint32_t bi : batch) {
    const data::Example& ex = examples[bi];
    auto [is_head, qrow] = QueryRow(ex.query);
    if (is_head) {
      hq_rows.push_back(qrow);
      hs_rows.push_back(ServiceRow(true, ex.service));
      head_order.push_back(bi);
    } else {
      tq_rows.push_back(qrow);
      ts_rows.push_back(ServiceRow(false, ex.service));
      tail_order.push_back(bi);
    }
  }
  order->clear();
  order->insert(order->end(), head_order.begin(), head_order.end());
  order->insert(order->end(), tail_order.begin(), tail_order.end());

  // With the online inner-product head, services must be scored through
  // the SAME single embedding that is exported for retrieval (the mean of
  // the two aligned views) — otherwise training and serving diverge.
  auto service_view = [&](const Encoded& enc,
                          const std::vector<uint32_t>& head_side_rows,
                          const std::vector<uint32_t>& tail_side_rows,
                          bool head_partition) -> Tensor {
    const std::vector<uint32_t>& own =
        head_partition ? head_side_rows : tail_side_rows;
    Tensor z_own = nn::GatherRows(
        head_partition ? enc.head.readout : enc.tail.readout, own);
    if (!cfg_.inner_product_head || cfg_.share_encoders) return z_own;
    const std::vector<uint32_t>& other =
        head_partition ? tail_side_rows : head_side_rows;
    Tensor z_other = nn::GatherRows(
        head_partition ? enc.tail.readout : enc.head.readout, other);
    return nn::Scale(nn::Add(z_own, z_other), 0.5f);
  };

  auto make_side = [&](bool head_partition, const std::vector<uint32_t>& q,
                       const std::vector<uint32_t>& sv) -> Tensor {
    const GnnOutput& out = head_partition ? e.head : e.tail;
    Tensor zq = nn::GatherRows(out.readout, q);
    // Row ids of the same services in the other partition.
    std::vector<uint32_t> sv_other(sv.size());
    if (!cfg_.share_encoders) {
      for (size_t i = 0; i < sv.size(); ++i) {
        const uint32_t svc =
            head_partition ? head_sub_->graph.ServiceIdOf(sv[i])
                           : tail_sub_->graph.ServiceIdOf(sv[i]);
        sv_other[i] = ServiceRow(!head_partition, svc);
      }
    }
    Tensor zs = head_partition ? service_view(e, sv, sv_other, true)
                               : service_view(e, sv_other, sv, false);
    if (cfg_.inner_product_head) return nn::RowDot(zq, zs);
    return click_head_->Forward(nn::ConcatCols(zq, zs));
  };

  if (!head_order.empty() && !tail_order.empty()) {
    return nn::ConcatRows(make_side(true, hq_rows, hs_rows),
                          make_side(false, tq_rows, ts_rows));
  }
  if (!head_order.empty()) return make_side(true, hq_rows, hs_rows);
  GARCIA_CHECK(!tail_order.empty());
  return make_side(false, tq_rows, ts_rows);
}

void GarciaModel::Fit(const data::Scenario& s) {
  core::ScopedExecution exec_scope(&exec_);
  Setup(s);

  std::vector<Tensor> params = head_encoder_->Parameters();
  auto append = [&params](const std::vector<Tensor>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  if (tail_encoder_) append(tail_encoder_->Parameters());
  if (intention_encoder_) append(intention_encoder_->Parameters());
  append(click_head_->Parameters());

  // ---- Pre-training (Sec. IV-C1) ----
  const bool any_cl = cfg_.use_ktcl || cfg_.use_secl || cfg_.use_igcl;
  if (any_cl && cfg_.pretrain_epochs > 0) {
    nn::Adam opt(params, cfg_.learning_rate);
    const size_t steps = std::max<size_t>(1, cfg_.max_batches_per_epoch / 2);
    for (size_t epoch = 0; epoch < cfg_.pretrain_epochs; ++epoch) {
      double epoch_loss = 0.0;
      for (size_t step = 0; step < steps; ++step) {
        opt.ZeroGrad();
        Encoded e = EncodeAll();
        Tensor loss = PretrainLoss(s, e, &rng_);
        loss.Backward();
        nn::ClipGradNorm(params, 5.0);
        opt.Step();
        epoch_loss += loss.scalar();
        if (epoch == 0 && step == 0) first_pretrain_loss_ = loss.scalar();
        last_pretrain_loss_ = loss.scalar();
      }
      GARCIA_LOG(Debug) << name() << " pretrain epoch " << epoch
                        << " loss=" << epoch_loss / steps;
    }
  }

  // ---- Fine-tuning (Sec. IV-C2): pre-trained parameters initialize the
  // search-task training. ----
  nn::Adam opt(params, cfg_.learning_rate);
  BatchIterator it(s.train.size(), cfg_.batch_size, &rng_);
  for (size_t epoch = 0; epoch < cfg_.finetune_epochs; ++epoch) {
    it.Reset();
    size_t steps = 0;
    double epoch_loss = 0.0;
    while (true) {
      if (cfg_.max_batches_per_epoch > 0 &&
          steps >= cfg_.max_batches_per_epoch) {
        break;
      }
      std::vector<uint32_t> batch = it.Next();
      if (batch.empty()) break;
      opt.ZeroGrad();
      Encoded e = EncodeAll();
      std::vector<uint32_t> order;
      Tensor logits = BatchLogits(s.train, batch, e, &order);
      Matrix labels(order.size(), 1);
      for (size_t i = 0; i < order.size(); ++i) {
        labels.at(i, 0) = s.train[order[i]].label;
      }
      Tensor loss = nn::BceWithLogits(logits, labels);
      loss.Backward();
      nn::ClipGradNorm(params, 5.0);
      opt.Step();
      epoch_loss += loss.scalar();
      last_finetune_loss_ = loss.scalar();
      ++steps;
    }
    GARCIA_LOG(Debug) << name() << " finetune epoch " << epoch
                      << " loss=" << (steps ? epoch_loss / steps : 0.0);
  }
  fitted_ = true;
}

std::vector<float> GarciaModel::Predict(
    const data::Scenario& s, const std::vector<data::Example>& examples) {
  GARCIA_CHECK(fitted_) << "Fit must run before Predict";
  GARCIA_CHECK(scenario_ == &s) << "Predict on a different scenario";
  if (examples.empty()) return {};
  core::ScopedExecution exec_scope(&exec_);
  const Encoded& e = CachedEncoded();
  std::vector<uint32_t> batch(examples.size());
  for (size_t i = 0; i < batch.size(); ++i) batch[i] = static_cast<uint32_t>(i);
  std::vector<uint32_t> order;
  Tensor logits = BatchLogits(examples, batch, e, &order);
  std::vector<float> scores(examples.size(), 0.0f);
  for (size_t r = 0; r < order.size(); ++r) {
    const float z = logits.value().at(r, 0);
    scores[order[r]] =
        z >= 0.0f ? 1.0f / (1.0f + std::exp(-z))
                  : std::exp(z) / (1.0f + std::exp(z));
  }
  return scores;
}

core::Matrix GarciaModel::ExportQueryEmbeddings(const data::Scenario& s) {
  GARCIA_CHECK(fitted_);
  GARCIA_CHECK(scenario_ == &s);
  core::ScopedExecution exec_scope(&exec_);
  const Encoded& e = CachedEncoded();
  Matrix out(s.num_queries(), cfg_.embedding_dim);
  for (uint32_t q = 0; q < s.num_queries(); ++q) {
    auto [is_head, row] = QueryRow(q);
    const Matrix& src =
        is_head ? e.head.readout.value() : e.tail.readout.value();
    out.CopyRowFrom(src, row, q);
  }
  return out;
}

core::Matrix GarciaModel::ExportServiceEmbeddings(const data::Scenario& s) {
  GARCIA_CHECK(fitted_);
  GARCIA_CHECK(scenario_ == &s);
  core::ScopedExecution exec_scope(&exec_);
  const Encoded& e = CachedEncoded();
  Matrix out(s.num_services(), cfg_.embedding_dim);
  for (uint32_t svc = 0; svc < s.num_services(); ++svc) {
    const uint32_t hrow = ServiceRow(true, svc);
    if (cfg_.share_encoders) {
      out.CopyRowFrom(e.head.readout.value(), hrow, svc);
      continue;
    }
    // Services carry two aligned views (KTCL, Eq. 5); serve their mean.
    const uint32_t trow = ServiceRow(false, svc);
    for (size_t k = 0; k < cfg_.embedding_dim; ++k) {
      out.at(svc, k) = 0.5f * (e.head.readout.value().at(hrow, k) +
                               e.tail.readout.value().at(trow, k));
    }
  }
  return out;
}

}  // namespace garcia::models
