#include "models/sgl.h"

namespace garcia::models {

using nn::Tensor;

Tensor Sgl::AuxiliaryLoss(core::Rng* rng) {
  const graph::SearchGraph& g = scenario_->graph;
  if (g.num_edges() == 0) return Tensor();
  auto make_keep = [&] {
    std::vector<uint8_t> keep(g.num_edges());
    for (auto& k : keep) {
      k = rng->Bernoulli(1.0 - cfg_.edge_dropout) ? 1 : 0;
    }
    return keep;
  };
  // The auxiliary views intentionally stay on the full graph even when
  // supervised training samples blocks (DESIGN.md §5e).
  const std::vector<uint8_t> keep1 = make_keep();
  const std::vector<uint8_t> keep2 = make_keep();
  Tensor z0 = BaseEmbeddings(full_block_);
  Tensor v1 = PropagateFrom(z0, full_block_, &keep1);
  Tensor v2 = PropagateFrom(z0, full_block_, &keep2);

  const size_t n = g.num_nodes();
  const size_t b = std::min(cfg_.cl_batch_size, n);
  if (b < 2) return Tensor();
  auto picks = rng->SampleWithoutReplacement(n, b);
  std::vector<uint32_t> rows(picks.begin(), picks.end());
  std::vector<uint32_t> identity(b);
  for (size_t i = 0; i < b; ++i) identity[i] = static_cast<uint32_t>(i);
  Tensor a = nn::GatherRows(v1, rows);
  Tensor c = nn::GatherRows(v2, rows);
  // SGL's canonical ssl temperature is 0.2.
  return nn::Add(nn::InfoNce(a, c, identity, 0.2f),
                 nn::InfoNce(c, a, identity, 0.2f));
}

}  // namespace garcia::models
