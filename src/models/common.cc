#include "models/common.h"

#include <cstring>
#include <numeric>

namespace garcia::models {

namespace {

// FNV-1a over raw bytes; each field is mixed with its full width so
// distinct configs cannot alias through truncation.
class Fingerprinter {
 public:
  template <typename T>
  void Mix(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    unsigned char bytes[sizeof(T)];
    std::memcpy(bytes, &value, sizeof(T));
    for (unsigned char b : bytes) {
      hash_ ^= b;
      hash_ *= 0x100000001b3ULL;
    }
  }

  void Mix(const std::string& s) {
    Mix(static_cast<uint64_t>(s.size()));
    for (char c : s) Mix(c);
  }

  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

}  // namespace

uint64_t TrainFingerprint(const TrainConfig& cfg, const std::string& model_name,
                          const data::Scenario& scenario) {
  Fingerprinter fp;
  fp.Mix(model_name);
  fp.Mix(static_cast<uint64_t>(cfg.embedding_dim));
  fp.Mix(static_cast<uint64_t>(cfg.num_layers));
  fp.Mix(cfg.learning_rate);
  fp.Mix(static_cast<uint64_t>(cfg.batch_size));
  fp.Mix(static_cast<uint64_t>(cfg.finetune_epochs));
  fp.Mix(static_cast<uint64_t>(cfg.pretrain_epochs));
  fp.Mix(static_cast<uint64_t>(cfg.max_batches_per_epoch));
  fp.Mix(cfg.seed);
  fp.Mix(static_cast<uint64_t>(cfg.sample_fanout));
  fp.Mix(cfg.sample_seed);
  fp.Mix(cfg.tau);
  fp.Mix(cfg.alpha);
  fp.Mix(cfg.beta);
  fp.Mix(static_cast<uint64_t>(cfg.cl_batch_size));
  fp.Mix(static_cast<uint64_t>(cfg.tree_levels));
  fp.Mix(cfg.use_ktcl);
  fp.Mix(cfg.use_secl);
  fp.Mix(cfg.use_igcl);
  fp.Mix(cfg.use_intention);
  fp.Mix(cfg.share_encoders);
  fp.Mix(cfg.use_attention);
  fp.Mix(cfg.ktcl_ngram_mining);
  fp.Mix(cfg.ssl_weight);
  fp.Mix(cfg.edge_dropout);
  fp.Mix(cfg.simgcl_eps);
  fp.Mix(cfg.inner_product_head);
  fp.Mix(static_cast<uint64_t>(scenario.num_queries()));
  fp.Mix(static_cast<uint64_t>(scenario.num_services()));
  fp.Mix(static_cast<uint64_t>(scenario.train.size()));
  return fp.hash();
}

std::vector<core::Matrix> SnapshotParameterValues(
    const std::vector<nn::Tensor>& params) {
  std::vector<core::Matrix> values;
  values.reserve(params.size());
  for (const nn::Tensor& p : params) values.push_back(p.value());
  return values;
}

void RestoreParameterValues(const std::vector<nn::Tensor>& params,
                            const std::vector<core::Matrix>& values) {
  GARCIA_CHECK_EQ(values.size(), params.size())
      << "checkpoint parameter count mismatch";
  for (size_t i = 0; i < params.size(); ++i) {
    GARCIA_CHECK_EQ(values[i].rows(), params[i].rows());
    GARCIA_CHECK_EQ(values[i].cols(), params[i].cols());
    const_cast<nn::Tensor&>(params[i]).mutable_value() = values[i];
  }
}

void RestoreTrainState(const train::TrainCheckpoint& ck,
                       const std::vector<nn::Tensor>& params, nn::Adam* opt) {
  RestoreParameterValues(params, ck.params);
  nn::AdamState state;
  state.t = ck.adam_t;
  state.m = ck.adam_m;
  state.v = ck.adam_v;
  opt->RestoreState(state);
}

eval::SlicedMetrics EvaluateModel(RankingModel* model,
                                  const data::Scenario& scenario,
                                  const std::vector<data::Example>& examples) {
  std::vector<float> scores = model->Predict(scenario, examples);
  GARCIA_CHECK_EQ(scores.size(), examples.size());
  std::vector<float> labels(examples.size());
  std::vector<uint32_t> qids(examples.size());
  for (size_t i = 0; i < examples.size(); ++i) {
    labels[i] = examples[i].label;
    qids[i] = examples[i].query;
  }
  return eval::ComputeSlicedMetrics(labels, scores, qids,
                                    scenario.split.is_head);
}

BatchIterator::BatchIterator(size_t num_examples, size_t batch_size,
                             core::Rng* rng)
    : order_(num_examples), batch_size_(batch_size), rng_(rng) {
  GARCIA_CHECK_GT(batch_size, 0u);
  std::iota(order_.begin(), order_.end(), 0);
  Reset();
}

std::vector<uint32_t> BatchIterator::Next() {
  if (cursor_ >= order_.size()) return {};
  const size_t end = std::min(order_.size(), cursor_ + batch_size_);
  std::vector<uint32_t> batch(order_.begin() + cursor_, order_.begin() + end);
  cursor_ = end;
  return batch;
}

void BatchIterator::Reset() {
  rng_->Shuffle(&order_);
  cursor_ = 0;
}

size_t BatchIterator::batches_per_epoch() const {
  return (order_.size() + batch_size_ - 1) / batch_size_;
}

void BatchIterator::Restore(const std::vector<uint32_t>& order,
                            size_t cursor) {
  GARCIA_CHECK_EQ(order.size(), order_.size())
      << "checkpoint iterator built over a different example count";
  GARCIA_CHECK_LE(cursor, order.size());
  order_ = order;
  cursor_ = cursor;
}

}  // namespace garcia::models
