#include "models/common.h"

#include <numeric>

namespace garcia::models {

eval::SlicedMetrics EvaluateModel(RankingModel* model,
                                  const data::Scenario& scenario,
                                  const std::vector<data::Example>& examples) {
  std::vector<float> scores = model->Predict(scenario, examples);
  GARCIA_CHECK_EQ(scores.size(), examples.size());
  std::vector<float> labels(examples.size());
  std::vector<uint32_t> qids(examples.size());
  for (size_t i = 0; i < examples.size(); ++i) {
    labels[i] = examples[i].label;
    qids[i] = examples[i].query;
  }
  return eval::ComputeSlicedMetrics(labels, scores, qids,
                                    scenario.split.is_head);
}

BatchIterator::BatchIterator(size_t num_examples, size_t batch_size,
                             core::Rng* rng)
    : order_(num_examples), batch_size_(batch_size), rng_(rng) {
  GARCIA_CHECK_GT(batch_size, 0u);
  std::iota(order_.begin(), order_.end(), 0);
  Reset();
}

std::vector<uint32_t> BatchIterator::Next() {
  if (cursor_ >= order_.size()) return {};
  const size_t end = std::min(order_.size(), cursor_ + batch_size_);
  std::vector<uint32_t> batch(order_.begin() + cursor_, order_.begin() + end);
  cursor_ = end;
  return batch;
}

void BatchIterator::Reset() {
  rng_->Shuffle(&order_);
  cursor_ = 0;
}

size_t BatchIterator::batches_per_epoch() const {
  return (order_.size() + batch_size_ - 1) / batch_size_;
}

}  // namespace garcia::models
