// Copyright (c) 2026 GARCIA reproduction authors.
// Wide&Deep baseline (Cheng et al., 2016): a graph-free CTR model. The wide
// part is a linear model over raw and crossed query/service attributes; the
// deep part is an MLP over id embeddings concatenated with attributes.

#ifndef GARCIA_MODELS_WIDE_DEEP_H_
#define GARCIA_MODELS_WIDE_DEEP_H_

#include <memory>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "models/common.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace garcia::models {

class WideDeep : public RankingModel {
 public:
  explicit WideDeep(const TrainConfig& config);
  ~WideDeep() override;

  std::string name() const override { return "Wide&Deep"; }
  void Fit(const data::Scenario& scenario) override;
  std::vector<float> Predict(
      const data::Scenario& scenario,
      const std::vector<data::Example>& examples) override;

 private:
  /// Wide features of one example: [attr_q || attr_s || attr_q ⊙ attr_s].
  core::Matrix WideFeatures(const std::vector<data::Example>& examples,
                            const std::vector<uint32_t>& batch) const;

  /// One batch's packed inputs: id lists plus the dense wide-feature
  /// matrix. Pure feature assembly (no rng, no tensor ops), so pipelined
  /// training packs step t+1's batch while step t's GEMMs run.
  struct PackedBatch {
    std::vector<uint32_t> q_ids, s_ids;
    core::Matrix wide;
  };
  PackedBatch PackBatch(const std::vector<data::Example>& examples,
                        const std::vector<uint32_t>& batch) const;
  nn::Tensor LogitsFromPacked(const PackedBatch& packed) const;
  nn::Tensor BatchLogits(const std::vector<data::Example>& examples,
                         const std::vector<uint32_t>& batch) const;

  TrainConfig cfg_;
  core::Rng rng_;
  /// Compute backend (0 threads = serial), installed around Fit / Predict.
  core::ExecutionContext exec_;
  const data::Scenario* scenario_ = nullptr;
  bool fitted_ = false;

  std::unique_ptr<nn::Embedding> query_embedding_;
  std::unique_ptr<nn::Embedding> service_embedding_;
  std::unique_ptr<nn::Linear> wide_;
  std::unique_ptr<nn::Mlp> deep_;
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_WIDE_DEEP_H_
