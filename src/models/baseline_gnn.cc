#include "models/baseline_gnn.h"

#include "core/logging.h"

namespace garcia::models {

using core::Matrix;
using nn::Tensor;

GnnBaseline::GnnBaseline(const TrainConfig& config)
    : cfg_(config),
      rng_(config.seed),
      sample_rng_(config.sample_seed),
      exec_(config.num_threads) {
  exec_.set_fusion(config.fuse_ops);
}

GnnBaseline::~GnnBaseline() = default;

Tensor GnnBaseline::BaseEmbeddings(const graph::Block& block) const {
  const graph::SearchGraph& g = scenario_->graph;
  if (block.full_graph) {
    return nn::Add(id_embedding_->Table(),
                   attr_proj_->Forward(Tensor::Constant(g.attributes())));
  }
  Matrix attrs(block.nodes.size(), g.attr_dim());
  for (size_t i = 0; i < block.nodes.size(); ++i) {
    attrs.CopyRowFrom(g.attributes(), block.nodes[i], i);
  }
  return nn::Add(nn::GatherRows(id_embedding_->Table(), block.nodes),
                 attr_proj_->Forward(Tensor::Constant(std::move(attrs))));
}

Tensor GnnBaseline::LogitsFromRows(const Tensor& emb,
                                   const std::vector<uint32_t>& q_rows,
                                   const std::vector<uint32_t>& s_rows) const {
  Tensor zq = nn::GatherRows(emb, q_rows);
  Tensor zs = nn::GatherRows(emb, s_rows);
  if (cfg_.inner_product_head) return nn::RowDot(zq, zs);
  return click_head_->Forward(nn::ConcatCols(zq, zs));
}

void GnnBaseline::Fit(const data::Scenario& s) {
  core::ScopedExecution exec_scope(&exec_);
  scenario_ = &s;
  const size_t d = cfg_.embedding_dim;
  id_embedding_ =
      std::make_unique<nn::Embedding>(s.graph.num_nodes(), d, &rng_);
  attr_proj_ =
      std::make_unique<nn::Linear>(s.graph.attr_dim(), d, &rng_);
  click_head_ =
      std::make_unique<nn::Mlp>(std::vector<size_t>{2 * d, d, 1}, &rng_);
  BuildModules(s);

  full_block_ = graph::Block::FullGraph(s.graph);
  sampling_ = cfg_.sample_fanout > 0;
  sample_rng_ = core::Rng(cfg_.sample_seed);  // re-Fit restarts the stream
  if (sampling_) {
    sampler_.emplace(&s.graph, cfg_.num_layers, cfg_.sample_fanout);
  } else {
    sampler_.reset();
  }

  std::vector<Tensor> params = id_embedding_->Parameters();
  auto append = [&params](const std::vector<Tensor>& more) {
    params.insert(params.end(), more.begin(), more.end());
  };
  append(attr_proj_->Parameters());
  append(click_head_->Parameters());
  append(ExtraParameters());

  nn::Adam opt(params, cfg_.learning_rate);
  // Baselines spend the full epoch budget (pretrain + finetune) on the
  // supervised objective, so their total update count matches GARCIA's
  // two-stage schedule. (The reverse choice — equal supervised budgets —
  // lifts GARCIA's head slice but washes out the contrastive-pretraining
  // effect the ablations measure; see EXPERIMENTS.md notes.)
  const size_t epochs = cfg_.finetune_epochs + cfg_.pretrain_epochs;
  BatchIterator it(s.train.size(), cfg_.batch_size, &rng_);

  // Crash-safe checkpointing (DESIGN.md §5h): single phase, so the resume
  // point is right here — after every construction-time rng draw (module
  // init, iterator shuffle), which the snapshotted stream state postdates.
  train::CheckpointManager ckpt(train::CheckpointOptions{
      cfg_.checkpoint_dir, cfg_.checkpoint_every_steps, cfg_.checkpoint_keep,
      TrainFingerprint(cfg_, name(), s), cfg_.checkpoint_fault});
  std::optional<train::TrainCheckpoint> resume = ckpt.Resume();
  uint64_t global_step = 0;
  size_t start_epoch = 0;
  size_t start_steps = 0;
  bool mid_epoch_resume = false;
  if (resume) {
    GARCIA_CHECK_EQ(resume->rng_streams.size(), 2u);
    GARCIA_CHECK(resume->has_iterator);
    RestoreTrainState(*resume, params, &opt);
    rng_.RestoreState(resume->rng_streams[0]);
    sample_rng_.RestoreState(resume->rng_streams[1]);
    it.Restore(resume->iterator_order, resume->iterator_cursor);
    global_step = resume->global_step;
    start_epoch = resume->epoch;
    start_steps = resume->step_in_epoch;
    mid_epoch_resume = true;
  }
  auto snapshot = [&](uint64_t epoch, uint64_t step_in_epoch,
                      const PlannedStepState& planned) {
    train::TrainCheckpoint ck;
    ck.phase = 0;
    ck.epoch = epoch;
    ck.step_in_epoch = step_in_epoch;
    ck.params = SnapshotParameterValues(params);
    nn::AdamState adam = opt.ExportState();
    ck.adam_t = adam.t;
    ck.adam_m = std::move(adam.m);
    ck.adam_v = std::move(adam.v);
    ck.rng_streams = planned.rng_streams;
    ck.has_iterator = true;
    ck.iterator_cursor = planned.iterator_cursor;
    ck.iterator_order = planned.iterator_order;
    return ck;
  };

  // SGL / SimGCL draw their auxiliary views from rng_ during the COMPUTE
  // phase; lookahead planning would reorder those draws against the next
  // step's batch shuffle, so they always train barriered.
  const bool pipelined = cfg_.pipeline_depth > 0 && !AuxiliaryLossDrawsRng();
  // One step's planned work: batch rows, the sampled block (every
  // sample_rng_ draw of the step), and the checkpoint state captured when
  // the step was planned (see PlannedStepState).
  struct StepWork {
    std::vector<uint32_t> batch;
    std::vector<uint32_t> q_rows, s_rows;
    graph::Block sampled;
    PlannedStepState state;
  };
  for (size_t epoch = start_epoch; epoch < epochs; ++epoch) {
    size_t first = 0;
    if (mid_epoch_resume) {
      // Continue from the restored iterator position; a Reset here would
      // burn a shuffle the uninterrupted run never drew.
      mid_epoch_resume = false;
      first = start_steps;
    } else {
      it.Reset();
    }
    double epoch_loss = 0.0;
    auto produce = [&](size_t) -> std::optional<StepWork> {
      StepWork w;
      w.batch = it.Next();
      if (w.batch.empty()) return std::nullopt;
      // Plan: map the batch's node rows (identity on the full graph,
      // block-local collection when sampling) before encoding.
      graph::SeedSet seeds(!sampling_);
      w.q_rows.reserve(w.batch.size());
      w.s_rows.reserve(w.batch.size());
      for (uint32_t bi : w.batch) {
        w.q_rows.push_back(seeds.Map(s.graph.QueryNode(s.train[bi].query)));
        w.s_rows.push_back(
            seeds.Map(s.graph.ServiceNode(s.train[bi].service)));
      }
      if (sampling_) w.sampled = sampler_->Sample(seeds.seeds(), &sample_rng_);
      w.state.rng_streams = {rng_.ExportState(), sample_rng_.ExportState()};
      w.state.has_iterator = true;
      w.state.iterator_cursor = it.cursor();
      if (ckpt.enabled()) w.state.iterator_order = it.order();
      return w;
    };
    auto consume = [&](size_t step, StepWork& w) {
      opt.ZeroGrad();
      const graph::Block& block = sampling_ ? w.sampled : full_block_;
      Tensor emb = ComputeEmbeddings(block);
      Tensor logits = LogitsFromRows(emb, w.q_rows, w.s_rows);
      Matrix labels(w.batch.size(), 1);
      for (size_t i = 0; i < w.batch.size(); ++i) {
        labels.at(i, 0) = s.train[w.batch[i]].label;
      }
      Tensor loss = nn::BceWithLogits(logits, labels);
      Tensor aux = AuxiliaryLoss(&rng_);
      if (aux.defined()) {
        loss = nn::Add(loss, nn::Scale(aux, cfg_.ssl_weight));
      }
      loss.Backward();
      nn::ClipGradNorm(params, 5.0);
      opt.Step();
      epoch_loss += loss.scalar();
      ++global_step;
      ckpt.AtStepEnd(global_step,
                     [&] { return snapshot(epoch, step + 1, w.state); });
    };
    const size_t steps =
        RunPipelinedSteps(exec_.pool(), pipelined, first,
                          cfg_.max_batches_per_epoch, produce, consume);
    GARCIA_LOG(Debug) << name() << " epoch " << epoch
                      << " loss=" << (steps ? epoch_loss / steps : 0.0);
  }
  fitted_ = true;
}

std::vector<float> GnnBaseline::Predict(
    const data::Scenario& s, const std::vector<data::Example>& examples) {
  GARCIA_CHECK(fitted_) << "Fit must run before Predict";
  GARCIA_CHECK(scenario_ == &s);
  if (examples.empty()) return {};
  core::ScopedExecution exec_scope(&exec_);
  Tensor emb = ComputeEmbeddings(full_block_);
  std::vector<uint32_t> q_rows, s_rows;
  q_rows.reserve(examples.size());
  s_rows.reserve(examples.size());
  for (const data::Example& ex : examples) {
    q_rows.push_back(s.graph.QueryNode(ex.query));
    s_rows.push_back(s.graph.ServiceNode(ex.service));
  }
  Tensor logits = LogitsFromRows(emb, q_rows, s_rows);
  std::vector<float> scores(examples.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = nn::StableSigmoid(logits.value().at(i, 0));
  }
  return scores;
}

core::Matrix GnnBaseline::ExportQueryEmbeddings(const data::Scenario& s) {
  GARCIA_CHECK(fitted_);
  core::ScopedExecution exec_scope(&exec_);
  Tensor emb = ComputeEmbeddings(full_block_);
  Matrix out(s.num_queries(), cfg_.embedding_dim);
  for (uint32_t q = 0; q < s.num_queries(); ++q) {
    out.CopyRowFrom(emb.value(), s.graph.QueryNode(q), q);
  }
  return out;
}

core::Matrix GnnBaseline::ExportServiceEmbeddings(const data::Scenario& s) {
  GARCIA_CHECK(fitted_);
  core::ScopedExecution exec_scope(&exec_);
  Tensor emb = ComputeEmbeddings(full_block_);
  Matrix out(s.num_services(), cfg_.embedding_dim);
  for (uint32_t svc = 0; svc < s.num_services(); ++svc) {
    out.CopyRowFrom(emb.value(), s.graph.ServiceNode(svc), svc);
  }
  return out;
}

}  // namespace garcia::models
