// Copyright (c) 2026 GARCIA reproduction authors.
// Shared skeleton for the full-graph GNN baselines (LightGCN, KGAT, SGL,
// SimGCL). Like the paper's extended baselines, all of them consume the
// node/edge attributes of the service search graph and share the same
// two-layer MLP click head and Adam/BCE training loop; they differ only in
// how node embeddings are computed and in optional self-supervised
// auxiliary losses.
//
// Training follows the block protocol of DESIGN.md §5e: with
// TrainConfig::sample_fanout == 0 every step encodes the trivial full-graph
// block (the pre-sampling behavior, bit for bit); with a finite fanout each
// step's batch rows seed a NeighborSampler block and the embedding pass
// runs only over it. Predict and the export hooks always use the full
// graph.

#ifndef GARCIA_MODELS_BASELINE_GNN_H_
#define GARCIA_MODELS_BASELINE_GNN_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "graph/neighbor_sampler.h"
#include "models/common.h"
#include "models/gnn_encoder.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace garcia::models {

class GnnBaseline : public RankingModel {
 public:
  explicit GnnBaseline(const TrainConfig& config);
  ~GnnBaseline() override;

  void Fit(const data::Scenario& scenario) override;
  std::vector<float> Predict(
      const data::Scenario& scenario,
      const std::vector<data::Example>& examples) override;

  core::Matrix ExportQueryEmbeddings(const data::Scenario& s) override;
  core::Matrix ExportServiceEmbeddings(const data::Scenario& s) override;

 protected:
  /// Creates model-specific modules; base modules (id embedding, attribute
  /// projection, click head) already exist when this runs.
  virtual void BuildModules(const data::Scenario& /*scenario*/) {}

  /// Node embedding matrix for the given block: all graph nodes (full
  /// block) or the block's local nodes with the seed/readout rows first.
  virtual nn::Tensor ComputeEmbeddings(const graph::Block& block) = 0;

  /// Optional self-supervised loss added to BCE; undefined Tensor = none.
  /// Always evaluated on the full graph (see DESIGN.md §5e on why the
  /// auxiliary views of SGL / SimGCL are not sampled).
  virtual nn::Tensor AuxiliaryLoss(core::Rng* /*rng*/) { return nn::Tensor(); }

  /// True when AuxiliaryLoss draws from the training rng (SGL / SimGCL
  /// view augmentations). Pipelined lookahead plans step t+1 — which also
  /// draws rng_ — before step t's compute phase runs, so for such models
  /// the draw order would differ from the barriered loop; they ignore
  /// TrainConfig::pipeline_depth and always train barriered.
  virtual bool AuxiliaryLossDrawsRng() const { return false; }

  /// Extra trainable parameters from BuildModules.
  virtual std::vector<nn::Tensor> ExtraParameters() const { return {}; }

  /// z^(0): id embedding + projected attributes, restricted to the block.
  nn::Tensor BaseEmbeddings(const graph::Block& block) const;

  const data::Scenario* scenario_ = nullptr;
  TrainConfig cfg_;
  core::Rng rng_;
  /// Dedicated sampler stream (cfg_.sample_seed); separate from rng_ so
  /// enabling sampling never shifts batch order or auxiliary-loss draws.
  core::Rng sample_rng_;
  /// Compute backend (0 threads = serial); installed around Fit / Predict /
  /// the export hooks with ScopedExecution.
  core::ExecutionContext exec_;
  std::unique_ptr<nn::Embedding> id_embedding_;
  std::unique_ptr<nn::Linear> attr_proj_;
  std::unique_ptr<nn::Mlp> click_head_;
  /// Trivial all-nodes block of the scenario graph (built by Fit); the
  /// inference path and the full-graph training path run over it.
  graph::Block full_block_;
  std::optional<graph::NeighborSampler> sampler_;
  bool sampling_ = false;  // cfg_.sample_fanout > 0
  bool fitted_ = false;

 private:
  nn::Tensor LogitsFromRows(const nn::Tensor& emb,
                            const std::vector<uint32_t>& q_rows,
                            const std::vector<uint32_t>& s_rows) const;
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_BASELINE_GNN_H_
