// Copyright (c) 2026 GARCIA reproduction authors.
// Shared skeleton for the full-graph GNN baselines (LightGCN, KGAT, SGL,
// SimGCL). Like the paper's extended baselines, all of them consume the
// node/edge attributes of the service search graph and share the same
// two-layer MLP click head and Adam/BCE training loop; they differ only in
// how node embeddings are computed and in optional self-supervised
// auxiliary losses.

#ifndef GARCIA_MODELS_BASELINE_GNN_H_
#define GARCIA_MODELS_BASELINE_GNN_H_

#include <memory>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "models/common.h"
#include "models/gnn_encoder.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace garcia::models {

class GnnBaseline : public RankingModel {
 public:
  explicit GnnBaseline(const TrainConfig& config);
  ~GnnBaseline() override;

  void Fit(const data::Scenario& scenario) override;
  std::vector<float> Predict(
      const data::Scenario& scenario,
      const std::vector<data::Example>& examples) override;

  core::Matrix ExportQueryEmbeddings(const data::Scenario& s) override;
  core::Matrix ExportServiceEmbeddings(const data::Scenario& s) override;

 protected:
  /// Creates model-specific modules; base modules (id embedding, attribute
  /// projection, click head) already exist when this runs.
  virtual void BuildModules(const data::Scenario& /*scenario*/) {}

  /// Node embedding matrix (num_nodes x dim) for the current parameters.
  virtual nn::Tensor ComputeEmbeddings() = 0;

  /// Optional self-supervised loss added to BCE; undefined Tensor = none.
  virtual nn::Tensor AuxiliaryLoss(core::Rng* /*rng*/) { return nn::Tensor(); }

  /// Extra trainable parameters from BuildModules.
  virtual std::vector<nn::Tensor> ExtraParameters() const { return {}; }

  /// z^(0): id embedding + projected attributes.
  nn::Tensor BaseEmbeddings() const;

  const data::Scenario* scenario_ = nullptr;
  TrainConfig cfg_;
  core::Rng rng_;
  /// Compute backend (0 threads = serial); installed around Fit / Predict /
  /// the export hooks with ScopedExecution.
  core::ExecutionContext exec_;
  std::unique_ptr<nn::Embedding> id_embedding_;
  std::unique_ptr<nn::Linear> attr_proj_;
  std::unique_ptr<nn::Mlp> click_head_;
  bool fitted_ = false;

 private:
  nn::Tensor BatchLogits(const nn::Tensor& emb,
                         const std::vector<data::Example>& examples,
                         const std::vector<uint32_t>& batch) const;
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_BASELINE_GNN_H_
