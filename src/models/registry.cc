#include "models/registry.h"

#include "models/garcia_model.h"
#include "models/kgat.h"
#include "models/lightgcn.h"
#include "models/sgl.h"
#include "models/simgcl.h"
#include "models/wide_deep.h"

namespace garcia::models {

const std::vector<std::string>& AllModelNames() {
  static const std::vector<std::string> kNames = {
      "Wide&Deep", "LightGCN", "KGAT", "SGL", "SimSGL", "GARCIA"};
  return kNames;
}

const std::vector<std::string>& BaselineModelNames() {
  static const std::vector<std::string> kNames = {
      "Wide&Deep", "LightGCN", "KGAT", "SGL", "SimSGL"};
  return kNames;
}

std::unique_ptr<RankingModel> CreateModel(const std::string& name,
                                          const TrainConfig& config) {
  if (name == "Wide&Deep") return std::make_unique<WideDeep>(config);
  if (name == "LightGCN") return std::make_unique<LightGcn>(config);
  if (name == "KGAT") return std::make_unique<Kgat>(config);
  if (name == "SGL") return std::make_unique<Sgl>(config);
  if (name == "SimSGL") return std::make_unique<SimGcl>(config);
  if (name == "GARCIA") return std::make_unique<GarciaModel>(config);
  GARCIA_CHECK(false) << "unknown model: " << name;
  return nullptr;
}

}  // namespace garcia::models
