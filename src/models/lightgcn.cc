#include "models/lightgcn.h"

#include "core/macros.h"

namespace garcia::models {

using nn::Tensor;

void LightGcn::BuildModules(const data::Scenario& s) {
  inv_sqrt_deg_ = cfg_.sample_fanout > 0 ? graph::InvSqrtDegrees(s.graph)
                                         : std::vector<float>();
}

Tensor LightGcn::PropagateFrom(const Tensor& z0, const graph::Block& block,
                               const std::vector<uint8_t>* keep) const {
  if (block.full_graph) {
    const graph::SearchGraph& g = scenario_->graph;
    std::vector<Tensor> layers = {z0};
    Tensor z = z0;
    for (size_t l = 0; l < cfg_.num_layers; ++l) {
      z = GcnPropagate(z, g.edge_src(), g.edge_dst(), g.num_nodes(), keep);
      layers.push_back(z);
    }
    return nn::Average(layers);
  }
  GARCIA_CHECK(keep == nullptr) << "edge masks only exist on the full graph";
  GARCIA_CHECK_EQ(block.layers.size(), cfg_.num_layers);
  std::vector<Tensor> layers = {z0};
  Tensor z = z0;
  for (size_t l = 0; l < cfg_.num_layers; ++l) {
    z = GcnPropagateBlockLayer(z, block, block.layers[l], inv_sqrt_deg_);
    layers.push_back(z);
  }
  return LayerMeanReadout(layers, block.num_readout_rows());
}

Tensor LightGcn::ComputeEmbeddings(const graph::Block& block) {
  return PropagateFrom(BaseEmbeddings(block), block, nullptr);
}

}  // namespace garcia::models
