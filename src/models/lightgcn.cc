#include "models/lightgcn.h"

namespace garcia::models {

using nn::Tensor;

Tensor LightGcn::PropagateFrom(const Tensor& z0,
                               const std::vector<uint8_t>* keep) const {
  const graph::SearchGraph& g = scenario_->graph;
  std::vector<Tensor> layers = {z0};
  Tensor z = z0;
  for (size_t l = 0; l < cfg_.num_layers; ++l) {
    z = GcnPropagate(z, g.edge_src(), g.edge_dst(), g.num_nodes(), keep);
    layers.push_back(z);
  }
  return nn::Average(layers);
}

Tensor LightGcn::ComputeEmbeddings() {
  return PropagateFrom(BaseEmbeddings(), nullptr);
}

}  // namespace garcia::models
