#include "models/intention_encoder.h"

#include <algorithm>

namespace garcia::models {

using nn::Tensor;

IntentionEncoder::IntentionEncoder(const intent::IntentionForest& forest,
                                   size_t dim, size_t levels, core::Rng* rng)
    : forest_(forest),
      levels_(std::clamp<size_t>(levels, 1, forest.num_levels())) {
  GARCIA_CHECK(forest.finalized());
  embedding_ = std::make_unique<nn::Embedding>(forest.size(), dim, rng);
  RegisterChild(embedding_.get());
  transform_ = std::make_unique<nn::Linear>(dim, dim, rng);
  RegisterChild(transform_.get());
}

Tensor IntentionEncoder::Encode() const {
  const size_t n = forest_.size();
  Tensor z = embedding_->Table();

  // Bottom-up: for each level from the deepest incorporated one to the
  // roots, recompute that level's rows from the current table, then write
  // them back by re-assembling the full matrix with a gather over
  // [old rows ; new level rows].
  for (size_t depth_plus1 = levels_; depth_plus1 > 0; --depth_plus1) {
    const size_t depth = depth_plus1 - 1;
    const auto& level = forest_.levels()[depth];
    if (level.empty()) continue;

    // Child-sum for this level via segment ops: one entry per (child ->
    // position of parent in `level`).
    std::vector<uint32_t> child_ids;
    std::vector<uint32_t> parent_pos;
    for (size_t p = 0; p < level.size(); ++p) {
      for (uint32_t c : forest_.children(level[p])) {
        // Children deeper than the level budget are excluded (H sweep).
        if (forest_.depth(c) >= levels_) continue;
        child_ids.push_back(c);
        parent_pos.push_back(static_cast<uint32_t>(p));
      }
    }

    Tensor self = nn::GatherRows(z, level);
    Tensor summed = self;
    if (!child_ids.empty()) {
      Tensor child_rows = nn::GatherRows(z, child_ids);
      Tensor child_sum = nn::SegmentSum(child_rows, parent_pos, level.size());
      summed = nn::Add(self, child_sum);
    }
    Tensor updated = nn::Tanh(transform_->Forward(summed));  // σ = tanh

    // Write back: new_table[i] = updated[pos] for level nodes, old row
    // otherwise, expressed as a gather over the row-concatenation.
    std::vector<uint32_t> perm(n);
    for (uint32_t i = 0; i < n; ++i) perm[i] = i;
    for (size_t p = 0; p < level.size(); ++p) {
      perm[level[p]] = static_cast<uint32_t>(n + p);
    }
    z = nn::GatherRows(nn::ConcatRows(z, updated), perm);
  }
  return z;
}

uint32_t IntentionEncoder::Attach(uint32_t intention) const {
  if (forest_.depth(intention) < levels_) return intention;
  const auto chain = forest_.AncestorChain(intention);
  for (uint32_t node : chain) {
    if (forest_.depth(node) < levels_) return node;
  }
  return chain.back();  // root (depth 0) always qualifies
}

std::vector<uint32_t> IntentionEncoder::PositiveChain(
    uint32_t intention) const {
  return forest_.AncestorChain(Attach(intention));
}

}  // namespace garcia::models
