// Copyright (c) 2026 GARCIA reproduction authors.
// Factory for the six evaluated models, keyed by the names used in the
// paper's tables.

#ifndef GARCIA_MODELS_REGISTRY_H_
#define GARCIA_MODELS_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "models/common.h"

namespace garcia::models {

/// Names in paper-table order: Wide&Deep, LightGCN, KGAT, SGL, SimSGL,
/// GARCIA.
const std::vector<std::string>& AllModelNames();

/// Baselines only (everything except GARCIA).
const std::vector<std::string>& BaselineModelNames();

/// Creates a model by its table name. CHECK-fails on unknown names.
std::unique_ptr<RankingModel> CreateModel(const std::string& name,
                                          const TrainConfig& config);

}  // namespace garcia::models

#endif  // GARCIA_MODELS_REGISTRY_H_
