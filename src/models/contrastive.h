// Copyright (c) 2026 GARCIA reproduction authors.
// Multi-granularity contrastive learning support (Sec. IV-B): KTCL anchor
// mining and IGCL batch assembly. The losses themselves are nn::InfoNce /
// nn::MaskedInfoNce applied to tensors prepared here and by GarciaModel.

#ifndef GARCIA_MODELS_CONTRASTIVE_H_
#define GARCIA_MODELS_CONTRASTIVE_H_

#include <cstdint>
#include <vector>

#include "data/scenario.h"
#include "models/intention_encoder.h"

namespace garcia::models {

/// Mined <tail query, head query> anchor pairs for KTCL (Sec. IV-B1).
/// Selection criteria, per the paper:
///  1. the head query has the most semantic-level relevance with the tail
///     query (token Jaccard — our stand-in for the production text encoder);
///  2. the pair shares at least one correlation (city / brand / category);
///  3. ties are broken toward the head query with the most exposure.
/// Tail queries with no positively-relevant, correlation-sharing head are
/// skipped.
struct KtclAnchors {
  std::vector<uint32_t> tail_query;
  std::vector<uint32_t> head_query;  // parallel to tail_query

  size_t size() const { return tail_query.size(); }
};

/// Semantic-relevance scorer used by criterion 1.
enum class KtclRelevance {
  kTokenJaccard,  // default, word-level overlap
  kNgramCosine,   // character-n-gram embedding cosine (future-work text
                  // module; catches sub-token matches like iphone/phone)
};

KtclAnchors MineKtclAnchors(const data::Scenario& scenario,
                            KtclRelevance relevance =
                                KtclRelevance::kTokenJaccard);

/// Densifies mined anchor pairs into a per-query lookup for the serving
/// fallback chain: entry q holds the head anchor of query q, or -1 when no
/// anchor was mined. The same pairs that transfer knowledge to tail
/// queries at training time (Eq. 5) stand in for a missing tail embedding
/// at serving time.
std::vector<int32_t> AnchorHeadOf(const KtclAnchors& anchors,
                                  size_t num_queries);

/// Generalized anchor mining between an arbitrary (lower-frequency)
/// source group and a (higher-frequency) target group of queries — the
/// paper's future-work direction of "splitting queries into multiple
/// groups via frequency ... and performing knowledge transfer between
/// query groups" (Sec. VI). MineKtclAnchors is the special case
/// source = tail, target = head.
KtclAnchors MineCrossGroupAnchors(const data::Scenario& scenario,
                                  const std::vector<uint32_t>& source_queries,
                                  const std::vector<uint32_t>& target_queries,
                                  KtclRelevance relevance =
                                      KtclRelevance::kTokenJaccard);

/// A prepared IGCL batch (Eq. 9). For each (entity, positive-ancestor j)
/// pair there is one anchor row; candidates are all intentions within the
/// encoder's level budget; the per-pair mask admits exactly {j} ∪ D_{p,j},
/// where D is every intention at the same level as the entity's (attached)
/// intention i — "hard" negatives from the same tree plus "easy" negatives
/// from other trees.
struct IgclBatch {
  /// Index into the entity batch (duplicated across that entity's pairs).
  std::vector<uint32_t> anchor_rows;
  /// Intention ids forming the candidate set (depth < H).
  std::vector<uint32_t> candidate_ids;
  /// Position of each pair's positive within candidate_ids.
  std::vector<uint32_t> targets;
  /// pairs x candidates admission mask.
  core::Matrix mask;

  size_t num_pairs() const { return anchor_rows.size(); }
};

/// entity_intentions holds the raw (leaf) intention of each batch entity;
/// re-attachment to the level budget happens inside.
IgclBatch BuildIgclBatch(const IntentionEncoder& encoder,
                         const std::vector<uint32_t>& entity_intentions);

}  // namespace garcia::models

#endif  // GARCIA_MODELS_CONTRASTIVE_H_
