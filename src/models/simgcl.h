// Copyright (c) 2026 GARCIA reproduction authors.
// SimGCL baseline (Yu et al., SIGIR'22): graph-augmentation-free contrastive
// learning — the two views perturb every propagation layer with scaled,
// sign-aligned uniform noise instead of dropping edges.

#ifndef GARCIA_MODELS_SIMGCL_H_
#define GARCIA_MODELS_SIMGCL_H_

#include <string>

#include "models/lightgcn.h"

namespace garcia::models {

class SimGcl : public LightGcn {
 public:
  explicit SimGcl(const TrainConfig& config) : LightGcn(config) {}

  std::string name() const override { return "SimSGL"; }  // paper's spelling

 protected:
  nn::Tensor AuxiliaryLoss(core::Rng* rng) override;
  bool AuxiliaryLossDrawsRng() const override { return true; }

 private:
  /// One noisy propagation pass.
  nn::Tensor NoisyView(const nn::Tensor& z0, core::Rng* rng) const;
};

}  // namespace garcia::models

#endif  // GARCIA_MODELS_SIMGCL_H_
