#include "graph/frequency_groups.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/macros.h"

namespace garcia::graph {

namespace {

std::vector<uint32_t> OrderByExposure(const std::vector<uint64_t>& exposure) {
  std::vector<uint32_t> order(exposure.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return exposure[a] > exposure[b];
  });
  return order;
}

FrequencyGroups FromBoundaries(const std::vector<uint32_t>& order,
                               const std::vector<size_t>& sizes) {
  FrequencyGroups out;
  out.group_of.assign(order.size(), 0);
  size_t cursor = 0;
  for (size_t g = 0; g < sizes.size(); ++g) {
    std::vector<uint32_t> group;
    for (size_t i = 0; i < sizes[g] && cursor < order.size(); ++i, ++cursor) {
      group.push_back(order[cursor]);
      out.group_of[order[cursor]] = static_cast<uint32_t>(g);
    }
    std::sort(group.begin(), group.end());
    out.groups.push_back(std::move(group));
  }
  // Any remainder (rounding) joins the last group.
  while (cursor < order.size()) {
    out.groups.back().push_back(order[cursor]);
    out.group_of[order[cursor]] =
        static_cast<uint32_t>(out.groups.size() - 1);
    ++cursor;
  }
  std::sort(out.groups.back().begin(), out.groups.back().end());
  return out;
}

}  // namespace

std::vector<double> FrequencyGroups::MassShares(
    const std::vector<uint64_t>& exposure) const {
  GARCIA_CHECK_EQ(exposure.size(), group_of.size());
  std::vector<double> mass(num_groups(), 0.0);
  double total = 0.0;
  for (size_t q = 0; q < exposure.size(); ++q) {
    mass[group_of[q]] += static_cast<double>(exposure[q]);
    total += static_cast<double>(exposure[q]);
  }
  if (total > 0.0) {
    for (double& m : mass) m /= total;
  }
  return mass;
}

FrequencyGroups FrequencyGroups::ByEqualMass(
    const std::vector<uint64_t>& exposure, size_t num_groups) {
  GARCIA_CHECK_GE(num_groups, 1u);
  GARCIA_CHECK(!exposure.empty());
  num_groups = std::min(num_groups, exposure.size());
  const auto order = OrderByExposure(exposure);
  double total = 0.0;
  for (uint64_t e : exposure) total += static_cast<double>(e);

  std::vector<size_t> sizes;
  double acc = 0.0;
  size_t start = 0;
  for (size_t g = 0; g + 1 < num_groups; ++g) {
    const double target = total * static_cast<double>(g + 1) / num_groups;
    size_t end = start;
    // Grow the group until its cumulative mass reaches the target, but
    // always take at least one query and leave one per remaining group.
    while (end < order.size() - (num_groups - g - 1) &&
           (end == start || acc < target)) {
      acc += static_cast<double>(exposure[order[end]]);
      ++end;
    }
    sizes.push_back(end - start);
    start = end;
  }
  sizes.push_back(order.size() - start);
  return FromBoundaries(order, sizes);
}

FrequencyGroups FrequencyGroups::ByEqualCount(
    const std::vector<uint64_t>& exposure, size_t num_groups) {
  GARCIA_CHECK_GE(num_groups, 1u);
  GARCIA_CHECK(!exposure.empty());
  num_groups = std::min(num_groups, exposure.size());
  const auto order = OrderByExposure(exposure);
  std::vector<size_t> sizes;
  const size_t base = order.size() / num_groups;
  const size_t rem = order.size() % num_groups;
  for (size_t g = 0; g < num_groups; ++g) {
    sizes.push_back(base + (g < rem ? 1 : 0));
  }
  return FromBoundaries(order, sizes);
}

FrequencyGroups FrequencyGroups::ByGeometricCount(
    const std::vector<uint64_t>& exposure, size_t num_groups, double ratio) {
  GARCIA_CHECK_GE(num_groups, 1u);
  GARCIA_CHECK_GT(ratio, 1.0);
  GARCIA_CHECK(!exposure.empty());
  num_groups = std::min(num_groups, exposure.size());
  const auto order = OrderByExposure(exposure);
  double weight_total = 0.0;
  for (size_t g = 0; g < num_groups; ++g) {
    weight_total += std::pow(ratio, static_cast<double>(g));
  }
  std::vector<size_t> sizes;
  size_t assigned = 0;
  for (size_t g = 0; g < num_groups; ++g) {
    size_t sz;
    if (g + 1 == num_groups) {
      sz = order.size() - assigned;
    } else {
      sz = std::max<size_t>(
          1, static_cast<size_t>(std::llround(
                 order.size() * std::pow(ratio, static_cast<double>(g)) /
                 weight_total)));
      sz = std::min(sz, order.size() - assigned - (num_groups - g - 1));
    }
    sizes.push_back(sz);
    assigned += sz;
  }
  return FromBoundaries(order, sizes);
}

}  // namespace garcia::graph
