#include "graph/neighbor_sampler.h"

#include <algorithm>
#include <cmath>

#include "core/macros.h"

namespace garcia::graph {

Block Block::FullGraph(const SearchGraph& g) {
  GARCIA_CHECK(g.finalized());
  Block b;
  b.full_graph = true;
  b.num_graph_nodes = g.num_nodes();
  b.num_seeds = g.num_nodes();
  return b;
}

NeighborSampler::NeighborSampler(const SearchGraph* g, size_t num_layers,
                                 size_t fanout)
    : g_(g), num_layers_(num_layers), fanout_(fanout) {
  GARCIA_CHECK(g_ != nullptr);
  GARCIA_CHECK(g_->finalized());
}

Block NeighborSampler::Sample(const std::vector<uint32_t>& seeds,
                              core::Rng* rng) const {
  Block b;
  b.num_graph_nodes = g_->num_nodes();
  b.num_seeds = seeds.size();
  b.nodes = seeds;
  // Global -> block-local map; seeds must be distinct so local ids are
  // well defined.
  std::vector<int32_t> local_of(g_->num_nodes(), -1);
  for (size_t i = 0; i < seeds.size(); ++i) {
    GARCIA_CHECK_LT(seeds[i], g_->num_nodes());
    GARCIA_CHECK_EQ(local_of[seeds[i]], -1) << "duplicate seed " << seeds[i];
    local_of[seeds[i]] = static_cast<int32_t>(i);
  }

  b.layers.resize(num_layers_);
  // Expand outward: the last encoder pass updates exactly the seeds, each
  // earlier pass updates everything the following pass reads.
  for (size_t p = num_layers_; p-- > 0;) {
    BlockLayer& layer = b.layers[p];
    layer.num_dst = b.nodes.size();
    std::vector<size_t> edge_ids;  // global edge rows, for the feature copy
    auto take_edge = [&](size_t e) {
      const uint32_t gsrc = g_->edge_src()[e];
      int32_t& slot = local_of[gsrc];
      if (slot < 0) {
        slot = static_cast<int32_t>(b.nodes.size());
        b.nodes.push_back(gsrc);
      }
      layer.src.push_back(static_cast<uint32_t>(slot));
      edge_ids.push_back(e);
    };
    for (uint32_t d = 0; d < layer.num_dst; ++d) {
      const auto [lo, hi] = g_->IncomingRange(b.nodes[d]);
      const size_t deg = hi - lo;
      const size_t before = layer.src.size();
      if (fanout_ == 0 || deg <= fanout_) {
        for (size_t e = lo; e < hi; ++e) take_edge(e);
      } else {
        // Draws happen in ascending destination order only — determinism
        // depends on nothing but the rng state. Picks are re-sorted so the
        // surviving edges keep the CSR's ascending global edge order.
        std::vector<size_t> picks = rng->SampleWithoutReplacement(deg, fanout_);
        std::sort(picks.begin(), picks.end());
        for (size_t k : picks) take_edge(lo + k);
      }
      layer.dst.insert(layer.dst.end(), layer.src.size() - before, d);
    }
    layer.num_src = b.nodes.size();
    layer.edge_feats = core::Matrix(edge_ids.size(), kEdgeFeatureDim);
    for (size_t i = 0; i < edge_ids.size(); ++i) {
      layer.edge_feats.CopyRowFrom(g_->edge_features(), edge_ids[i], i);
    }
  }
  return b;
}

std::vector<float> InvSqrtDegrees(const SearchGraph& g) {
  GARCIA_CHECK(g.finalized());
  std::vector<float> inv(g.num_nodes(), 0.0f);
  for (uint32_t v = 0; v < g.num_nodes(); ++v) {
    const size_t deg = g.Degree(v);
    if (deg > 0) {
      inv[v] = static_cast<float>(1.0 / std::sqrt(static_cast<double>(deg)));
    }
  }
  return inv;
}

}  // namespace garcia::graph
