// Copyright (c) 2026 GARCIA reproduction authors.
// Head/tail query split by exposure and per-partition subgraph extraction.
//
// The paper splits Q into Q_head (top queries by past-month exposure) and
// Q_tail, and organizes "head and tail graphs in advance for performing
// adaptive encoding" (Sec. V-A1). A subgraph keeps a subset of the queries
// and ALL services — the split is query-level, so every service appears in
// both partitions and receives both a head and a tail embedding (which KTCL
// aligns, Eq. 5).

#ifndef GARCIA_GRAPH_HEAD_TAIL_H_
#define GARCIA_GRAPH_HEAD_TAIL_H_

#include <cstdint>
#include <vector>

#include "graph/search_graph.h"

namespace garcia::graph {

/// Query-level head/tail partition.
struct HeadTailSplit {
  std::vector<bool> is_head;           // indexed by query id
  std::vector<uint32_t> head_queries;  // ascending
  std::vector<uint32_t> tail_queries;  // ascending

  /// Top `head_count` queries by exposure become heads (ties broken by id,
  /// matching the deterministic "top 10 thousand queries" rule).
  static HeadTailSplit ByExposureTopK(const std::vector<uint64_t>& exposure,
                                      size_t head_count);

  /// Top fraction (e.g. 0.01 for the paper's "top 1%" statistic).
  static HeadTailSplit ByExposureFraction(
      const std::vector<uint64_t>& exposure, double fraction);
};

/// A query-subset view of a SearchGraph with its own local id space.
/// Local query ids are [0, queries.size()); services keep their global
/// service ids (local service node = queries.size() + service_id).
struct Subgraph {
  SearchGraph graph;
  std::vector<uint32_t> global_query_ids;  // local query -> global query
  std::vector<int32_t> local_query_of;     // global query -> local (-1 absent)

  Subgraph(SearchGraph g, std::vector<uint32_t> global_ids,
           std::vector<int32_t> local_of)
      : graph(std::move(g)),
        global_query_ids(std::move(global_ids)),
        local_query_of(std::move(local_of)) {}

  bool ContainsQuery(uint32_t global_query_id) const {
    return local_query_of[global_query_id] >= 0;
  }
};

/// Extracts the subgraph induced by the given queries plus all services.
/// Keeps every edge whose query endpoint is in the subset; node attributes
/// are copied for retained rows.
Subgraph ExtractQuerySubgraph(const SearchGraph& full,
                              const std::vector<uint32_t>& query_ids);

}  // namespace garcia::graph

#endif  // GARCIA_GRAPH_HEAD_TAIL_H_
