#include "graph/head_tail.h"

#include <algorithm>
#include <numeric>

namespace garcia::graph {

HeadTailSplit HeadTailSplit::ByExposureTopK(
    const std::vector<uint64_t>& exposure, size_t head_count) {
  const size_t n = exposure.size();
  head_count = std::min(head_count, n);
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return exposure[a] > exposure[b];
  });
  HeadTailSplit split;
  split.is_head.assign(n, false);
  for (size_t i = 0; i < head_count; ++i) split.is_head[order[i]] = true;
  for (uint32_t q = 0; q < n; ++q) {
    (split.is_head[q] ? split.head_queries : split.tail_queries).push_back(q);
  }
  return split;
}

HeadTailSplit HeadTailSplit::ByExposureFraction(
    const std::vector<uint64_t>& exposure, double fraction) {
  GARCIA_CHECK_GT(fraction, 0.0);
  GARCIA_CHECK_LE(fraction, 1.0);
  const size_t k = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(exposure.size())));
  return ByExposureTopK(exposure, k);
}

Subgraph ExtractQuerySubgraph(const SearchGraph& full,
                              const std::vector<uint32_t>& query_ids) {
  std::vector<int32_t> local_of(full.num_queries(), -1);
  for (size_t i = 0; i < query_ids.size(); ++i) {
    GARCIA_CHECK_LT(query_ids[i], full.num_queries());
    GARCIA_CHECK_EQ(local_of[query_ids[i]], -1) << "duplicate query id";
    local_of[query_ids[i]] = static_cast<int32_t>(i);
  }

  SearchGraph sub(query_ids.size(), full.num_services(), full.attr_dim());

  // Attributes: subset queries then all services.
  for (size_t i = 0; i < query_ids.size(); ++i) {
    sub.attributes().CopyRowFrom(full.attributes(), query_ids[i], i);
  }
  for (uint32_t s = 0; s < full.num_services(); ++s) {
    sub.attributes().CopyRowFrom(full.attributes(), full.ServiceNode(s),
                                 sub.ServiceNode(s));
  }

  // Each logical link is stored in both directions; recreate it once from
  // the query->service direction.
  for (const Edge& e : full.edges()) {
    if (!full.IsQueryNode(e.src)) continue;
    const int32_t lq = local_of[e.src];
    if (lq < 0) continue;
    sub.AddLink(static_cast<uint32_t>(lq), full.ServiceIdOf(e.dst), e.kind,
                e.ctr, e.corr_mask);
  }
  sub.Finalize();
  return Subgraph(std::move(sub), query_ids, std::move(local_of));
}

}  // namespace garcia::graph
