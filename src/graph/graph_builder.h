// Copyright (c) 2026 GARCIA reproduction authors.
// Builds the service search graph from behavior logs, applying the paper's
// two edge-establishing conditions (Sec. III):
//
//  * Interaction condition — the service was clicked under the query in the
//    past 30 days; CTR is kept as an edge feature.
//  * Correlation condition — the query and service share a correlation key
//    (city / brand / category); the shared kinds form the edge feature.
//
// This mirrors the "Node Feature Extractor" / "Relation Extractor" stages of
// the online deployment diagram (Fig. 9).

#ifndef GARCIA_GRAPH_GRAPH_BUILDER_H_
#define GARCIA_GRAPH_GRAPH_BUILDER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/search_graph.h"

namespace garcia::graph {

/// Correlation keys of one query or service; -1 means "not applicable".
struct CorrelationKeys {
  int32_t city = -1;
  int32_t brand = -1;
  int32_t category = -1;

  /// Bitmask of keys shared by both sides (both non-negative and equal).
  uint8_t SharedWith(const CorrelationKeys& other) const;
};

/// Tunables for graph construction.
struct GraphBuildConfig {
  /// Minimum click count for the interaction condition.
  uint32_t min_clicks = 1;
  /// Cap on correlation-only edges added per query (keeps hub correlations
  /// from producing dense cliques, the "underline noise" the paper avoids).
  size_t max_correlation_degree = 10;
};

/// Accumulates logs, then emits a finalized SearchGraph.
class GraphBuilder {
 public:
  GraphBuilder(size_t num_queries, size_t num_services, size_t attr_dim);

  /// Correlation metadata; required before Build if correlation edges are
  /// wanted. Vectors must be sized num_queries / num_services.
  void SetQueryCorrelations(std::vector<CorrelationKeys> keys);
  void SetServiceCorrelations(std::vector<CorrelationKeys> keys);

  /// Accumulates impressions/clicks of service s under query q.
  void AddInteraction(uint32_t query_id, uint32_t service_id,
                      uint32_t impressions, uint32_t clicks);

  /// Node attribute matrix to copy into the graph (rows: queries then
  /// services).
  core::Matrix& attributes() { return attrs_; }

  /// Applies both conditions and returns the finalized graph.
  SearchGraph Build(const GraphBuildConfig& config) const;

  size_t num_queries() const { return num_queries_; }
  size_t num_services() const { return num_services_; }

 private:
  size_t num_queries_;
  size_t num_services_;
  core::Matrix attrs_;
  std::vector<CorrelationKeys> query_keys_;
  std::vector<CorrelationKeys> service_keys_;

  struct Counts {
    uint32_t impressions = 0;
    uint32_t clicks = 0;
  };
  std::unordered_map<uint64_t, Counts> interactions_;  // key: q << 32 | s
};

}  // namespace garcia::graph

#endif  // GARCIA_GRAPH_GRAPH_BUILDER_H_
