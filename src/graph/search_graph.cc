#include "graph/search_graph.h"

#include <algorithm>
#include <numeric>

namespace garcia::graph {

void Edge::WriteFeatures(float* out) const {
  out[0] = ctr;
  out[1] = kind == EdgeKind::kInteraction ? 1.0f : 0.0f;
  out[2] = (corr_mask & kCorrCity) ? 1.0f : 0.0f;
  out[3] = (corr_mask & kCorrBrand) ? 1.0f : 0.0f;
  out[4] = (corr_mask & kCorrCategory) ? 1.0f : 0.0f;
}

SearchGraph::SearchGraph(size_t num_queries, size_t num_services,
                         size_t attr_dim)
    : num_queries_(num_queries),
      num_services_(num_services),
      attrs_(num_queries + num_services, attr_dim) {}

uint32_t SearchGraph::QueryNode(uint32_t query_id) const {
  GARCIA_CHECK_LT(query_id, num_queries_);
  return query_id;
}

uint32_t SearchGraph::ServiceNode(uint32_t service_id) const {
  GARCIA_CHECK_LT(service_id, num_services_);
  return static_cast<uint32_t>(num_queries_) + service_id;
}

uint32_t SearchGraph::ServiceIdOf(uint32_t node) const {
  GARCIA_CHECK_GE(node, num_queries_);
  GARCIA_CHECK_LT(node, num_nodes());
  return node - static_cast<uint32_t>(num_queries_);
}

void SearchGraph::AddLink(uint32_t query_id, uint32_t service_id,
                          EdgeKind kind, float ctr, uint8_t corr_mask) {
  GARCIA_CHECK(!finalized_) << "AddLink after Finalize";
  const uint32_t q = QueryNode(query_id);
  const uint32_t s = ServiceNode(service_id);
  edges_.push_back({q, s, kind, ctr, corr_mask});
  edges_.push_back({s, q, kind, ctr, corr_mask});
}

void SearchGraph::Finalize() {
  GARCIA_CHECK(!finalized_);
  finalized_ = true;

  // Sort directed edges by destination to build the CSR index.
  std::vector<size_t> order(edges_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return edges_[a].dst < edges_[b].dst;
  });

  const size_t e = edges_.size();
  edge_src_.resize(e);
  edge_dst_.resize(e);
  edge_feats_ = core::Matrix(e, kEdgeFeatureDim);
  for (size_t i = 0; i < e; ++i) {
    const Edge& edge = edges_[order[i]];
    edge_src_[i] = edge.src;
    edge_dst_[i] = edge.dst;
    edge.WriteFeatures(edge_feats_.row(i));
  }

  csr_offsets_.assign(num_nodes() + 1, 0);
  for (size_t i = 0; i < e; ++i) csr_offsets_[edge_dst_[i] + 1]++;
  for (size_t i = 1; i <= num_nodes(); ++i) {
    csr_offsets_[i] += csr_offsets_[i - 1];
  }
}

size_t SearchGraph::Degree(uint32_t node) const {
  GARCIA_CHECK(finalized_);
  GARCIA_CHECK_LT(node, num_nodes());
  return csr_offsets_[node + 1] - csr_offsets_[node];
}

std::pair<size_t, size_t> SearchGraph::IncomingRange(uint32_t node) const {
  GARCIA_CHECK(finalized_);
  GARCIA_CHECK_LT(node, num_nodes());
  return {csr_offsets_[node], csr_offsets_[node + 1]};
}

}  // namespace garcia::graph
