// Copyright (c) 2026 GARCIA reproduction authors.
// The service search graph of Sec. III: a bipartite query/service graph with
// typed, feature-carrying edges.
//
// Node id space is unified: queries occupy [0, num_queries) and services
// occupy [num_queries, num_queries + num_services). Edges are stored
// directed (each logical link appears in both directions) so that GNN
// aggregation "dst <- src" can treat the edge list uniformly.

#ifndef GARCIA_GRAPH_SEARCH_GRAPH_H_
#define GARCIA_GRAPH_SEARCH_GRAPH_H_

#include <cstdint>
#include <vector>

#include "core/matrix.h"

namespace garcia::graph {

/// Why an edge exists (Sec. III establishes exactly these two conditions).
enum class EdgeKind : uint8_t {
  kInteraction = 0,  // service clicked under the query in the past 30 days
  kCorrelation = 1,  // query and service share city/brand/category
};

/// Correlation dimensions used by the correlation condition and by KTCL
/// anchor mining ("share the same correlations, e.g., city, brand and
/// category").
enum CorrelationBit : uint8_t {
  kCorrCity = 1 << 0,
  kCorrBrand = 1 << 1,
  kCorrCategory = 1 << 2,
};

/// Dense edge feature layout: [ctr, is_interaction, city, brand, category].
constexpr size_t kEdgeFeatureDim = 5;

/// One directed edge with its features.
struct Edge {
  uint32_t src = 0;
  uint32_t dst = 0;
  EdgeKind kind = EdgeKind::kInteraction;
  float ctr = 0.0f;       // meaningful for interaction edges
  uint8_t corr_mask = 0;  // OR of CorrelationBit, for correlation edges

  /// Writes the kEdgeFeatureDim-dimensional feature vector.
  void WriteFeatures(float* out) const;
};

/// Immutable-after-Finalize bipartite graph with CSR over incoming edges.
class SearchGraph {
 public:
  /// attr_dim is the node attribute width (the paper uses ~11 semantic
  /// attributes; our generator matches that).
  SearchGraph(size_t num_queries, size_t num_services, size_t attr_dim);

  size_t num_queries() const { return num_queries_; }
  size_t num_services() const { return num_services_; }
  size_t num_nodes() const { return num_queries_ + num_services_; }
  size_t num_edges() const { return edges_.size(); }
  size_t attr_dim() const { return attrs_.cols(); }

  bool IsQueryNode(uint32_t node) const { return node < num_queries_; }
  uint32_t QueryNode(uint32_t query_id) const;
  uint32_t ServiceNode(uint32_t service_id) const;
  uint32_t ServiceIdOf(uint32_t node) const;

  /// Adds the query<->service link in both directions. Must precede
  /// Finalize().
  void AddLink(uint32_t query_id, uint32_t service_id, EdgeKind kind,
               float ctr, uint8_t corr_mask);

  /// Node attribute row (mutable until training starts).
  core::Matrix& attributes() { return attrs_; }
  const core::Matrix& attributes() const { return attrs_; }

  /// Builds the CSR index; no AddLink afterwards.
  void Finalize();
  bool finalized() const { return finalized_; }

  const std::vector<Edge>& edges() const { return edges_; }

  /// Edge array views for GNN aggregation (valid after Finalize):
  /// parallel arrays over directed edges sorted by dst.
  const std::vector<uint32_t>& edge_src() const { return edge_src_; }
  const std::vector<uint32_t>& edge_dst() const { return edge_dst_; }
  /// E x kEdgeFeatureDim dense features, same ordering.
  const core::Matrix& edge_features() const { return edge_feats_; }

  /// In-degree of a node (number of incoming directed edges).
  size_t Degree(uint32_t node) const;

  /// Incoming neighbors of a node: pairs of (src, edge index into the
  /// sorted arrays), contiguous by CSR.
  std::pair<size_t, size_t> IncomingRange(uint32_t node) const;

 private:
  size_t num_queries_;
  size_t num_services_;
  std::vector<Edge> edges_;  // both directions of every link
  core::Matrix attrs_;

  bool finalized_ = false;
  std::vector<uint32_t> edge_src_;
  std::vector<uint32_t> edge_dst_;
  core::Matrix edge_feats_;
  std::vector<size_t> csr_offsets_;  // num_nodes + 1
};

}  // namespace garcia::graph

#endif  // GARCIA_GRAPH_SEARCH_GRAPH_H_
