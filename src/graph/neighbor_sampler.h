// Copyright (c) 2026 GARCIA reproduction authors.
// Minibatch block sampling for GNN training (DESIGN.md §5e).
//
// A Block is the L-pass computation structure of one sampled-subgraph
// encode: reverse fanout-bounded neighbor expansion from a seed-node
// frontier, DGL-style. All passes share ONE block-local id space with
// nested prefixes
//   A_L ⊆ A_{L-1} ⊆ ... ⊆ A_0,    A_L = the seeds,
// where seeds get local ids [0, num_seeds) and every outward expansion
// appends newly discovered source nodes. Encoder pass l (0-based, in
// encoder order) updates destination set A_{l+1} (the first
// layers[l].num_dst local nodes) by reading source set A_l (the first
// layers[l].num_src local nodes), so the seed rows are a valid row prefix
// of every intermediate representation and of the readout.
//
// Determinism contract: sampling draws only from the caller's core::Rng,
// in ascending destination order, and never touches the thread pool —
// blocks are bit-identical across runs with equal seeds and across any
// TrainConfig::num_threads. Within one destination the sampled edges keep
// ascending global edge order (the full graph's CSR order), which makes a
// fanout=0 block encode bit-identical, row for row, to the full-graph
// encode restricted to the seed closure.

#ifndef GARCIA_GRAPH_NEIGHBOR_SAMPLER_H_
#define GARCIA_GRAPH_NEIGHBOR_SAMPLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/rng.h"
#include "graph/search_graph.h"

namespace garcia::graph {

/// One encoder pass of a sampled block: compacted edge arrays over
/// block-local node ids, plus the per-edge feature rows in the same order.
struct BlockLayer {
  std::vector<uint32_t> src;  // block-local source node per edge
  std::vector<uint32_t> dst;  // block-local destination per edge, ascending
  core::Matrix edge_feats;    // |edges| x kEdgeFeatureDim, same edge order
  size_t num_dst = 0;         // this pass updates local nodes [0, num_dst)
  size_t num_src = 0;         // and may read local nodes [0, num_src)
};

/// The sampled computation structure for one encode. A Block either
/// carries explicit per-pass layers (sampled mode) or is the trivial
/// all-nodes block (full_graph mode), in which case encode consumers read
/// the graph's own edge arrays directly and `nodes`/`layers` stay empty.
struct Block {
  bool full_graph = false;
  size_t num_graph_nodes = 0;  // nodes of the underlying graph
  size_t num_seeds = 0;
  std::vector<uint32_t> nodes;     // block-local id -> global node id
  std::vector<BlockLayer> layers;  // indexed by encoder pass l = 0..L-1

  /// Rows of the innermost (layer-0) representation.
  size_t num_nodes() const { return full_graph ? num_graph_nodes : nodes.size(); }
  /// Rows of the readout: every node for the full graph, else the seeds.
  size_t num_readout_rows() const {
    return full_graph ? num_graph_nodes : num_seeds;
  }

  /// The trivial all-nodes block (O(1); no edge copies).
  static Block FullGraph(const SearchGraph& g);
};

/// Deterministic fanout-bounded L-hop reverse sampler over one graph.
/// fanout == 0 means "all neighbors": the block reproduces the full graph
/// restricted to the L-hop closure of the seeds.
class NeighborSampler {
 public:
  /// The graph must outlive the sampler and be finalized.
  NeighborSampler(const SearchGraph* g, size_t num_layers, size_t fanout);

  /// Samples a block from distinct seed global node ids. Seed i gets
  /// block-local id i. `rng` is only drawn from when a destination's
  /// degree exceeds the fanout.
  Block Sample(const std::vector<uint32_t>& seeds, core::Rng* rng) const;

  size_t num_layers() const { return num_layers_; }
  size_t fanout() const { return fanout_; }

 private:
  const SearchGraph* g_;
  size_t num_layers_;
  size_t fanout_;
};

/// Collects the distinct node rows a training step touches, in first-use
/// order, assigning each its block-local id — or passes rows through
/// unchanged in identity mode (full-graph training), so the same planning
/// code drives both paths.
class SeedSet {
 public:
  explicit SeedSet(bool identity) : identity_(identity) {}

  /// Identity mode: returns `row`. Collect mode: returns the block-local
  /// id of `row`, registering it as a seed on first use.
  uint32_t Map(uint32_t row) {
    if (identity_) return row;
    auto [it, inserted] =
        pos_.emplace(row, static_cast<uint32_t>(seeds_.size()));
    if (inserted) seeds_.push_back(row);
    return it->second;
  }

  bool identity() const { return identity_; }
  const std::vector<uint32_t>& seeds() const { return seeds_; }

 private:
  bool identity_;
  std::vector<uint32_t> seeds_;
  std::unordered_map<uint32_t, uint32_t> pos_;
};

/// 1/sqrt(degree) per node (0 for isolated nodes). Sampled LightGCN-style
/// propagation weights edges by the FULL graph's degrees — the paper's
/// normalization — not by the degrees of the sampled subgraph.
std::vector<float> InvSqrtDegrees(const SearchGraph& g);

}  // namespace garcia::graph

#endif  // GARCIA_GRAPH_NEIGHBOR_SAMPLER_H_
