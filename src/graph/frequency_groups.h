// Copyright (c) 2026 GARCIA reproduction authors.
// Multi-group frequency split — scaffolding for the paper's future-work
// direction (Sec. VI): "split queries into multiple groups via frequency in
// an adaptive manner and perform effective knowledge transfer between query
// groups with different frequencies".
//
// The head/tail split (head_tail.h) is the two-group special case. Here
// queries are partitioned into K groups of (approximately) equal exposure
// mass, ordered from most to least frequent; knowledge transfers between
// adjacent groups (models::MineCrossGroupAnchors).

#ifndef GARCIA_GRAPH_FREQUENCY_GROUPS_H_
#define GARCIA_GRAPH_FREQUENCY_GROUPS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace garcia::graph {

/// A K-way frequency partition of the query set.
struct FrequencyGroups {
  /// groups[g] holds the query ids of group g; group 0 is the most
  /// frequent. Every query belongs to exactly one group.
  std::vector<std::vector<uint32_t>> groups;
  /// group_of[query] = its group index.
  std::vector<uint32_t> group_of;

  size_t num_groups() const { return groups.size(); }

  /// Exposure mass captured by each group (fractions summing to 1).
  std::vector<double> MassShares(const std::vector<uint64_t>& exposure) const;

  /// Splits so that each group carries ~1/K of the total exposure mass
  /// (queries ordered by exposure, ties by id). With heavy Zipf traffic the
  /// top group ends up tiny and the bottom group huge — the adaptive
  /// generalization of "top queries are heads".
  static FrequencyGroups ByEqualMass(const std::vector<uint64_t>& exposure,
                                     size_t num_groups);

  /// Splits by count quantiles: each group has ~N/K queries.
  static FrequencyGroups ByEqualCount(const std::vector<uint64_t>& exposure,
                                      size_t num_groups);

  /// Geometric count split: group g holds ~ratio× more queries than group
  /// g-1 (e.g. K=3, ratio=10 -> top ~1%, next ~9%, remaining ~90%). This is
  /// the natural K-way generalization of the paper's "top 10 thousand
  /// queries are heads" rule for heavy-tailed traffic, where equal-mass
  /// groups degenerate to single queries.
  static FrequencyGroups ByGeometricCount(
      const std::vector<uint64_t>& exposure, size_t num_groups,
      double ratio = 10.0);
};

}  // namespace garcia::graph

#endif  // GARCIA_GRAPH_FREQUENCY_GROUPS_H_
