#include "graph/graph_builder.h"

#include <algorithm>

namespace garcia::graph {

uint8_t CorrelationKeys::SharedWith(const CorrelationKeys& other) const {
  uint8_t mask = 0;
  if (city >= 0 && city == other.city) mask |= kCorrCity;
  if (brand >= 0 && brand == other.brand) mask |= kCorrBrand;
  if (category >= 0 && category == other.category) mask |= kCorrCategory;
  return mask;
}

GraphBuilder::GraphBuilder(size_t num_queries, size_t num_services,
                           size_t attr_dim)
    : num_queries_(num_queries),
      num_services_(num_services),
      attrs_(num_queries + num_services, attr_dim) {}

void GraphBuilder::SetQueryCorrelations(std::vector<CorrelationKeys> keys) {
  GARCIA_CHECK_EQ(keys.size(), num_queries_);
  query_keys_ = std::move(keys);
}

void GraphBuilder::SetServiceCorrelations(std::vector<CorrelationKeys> keys) {
  GARCIA_CHECK_EQ(keys.size(), num_services_);
  service_keys_ = std::move(keys);
}

void GraphBuilder::AddInteraction(uint32_t query_id, uint32_t service_id,
                                  uint32_t impressions, uint32_t clicks) {
  GARCIA_CHECK_LT(query_id, num_queries_);
  GARCIA_CHECK_LT(service_id, num_services_);
  GARCIA_CHECK_LE(clicks, impressions);
  const uint64_t key = (static_cast<uint64_t>(query_id) << 32) | service_id;
  Counts& c = interactions_[key];
  c.impressions += impressions;
  c.clicks += clicks;
}

SearchGraph GraphBuilder::Build(const GraphBuildConfig& config) const {
  SearchGraph g(num_queries_, num_services_, attrs_.cols());
  g.attributes() = attrs_;

  // Interaction condition. Remember which pairs are already linked so a
  // correlation edge is not duplicated on top.
  std::unordered_map<uint64_t, bool> linked;
  linked.reserve(interactions_.size());
  // Deterministic iteration: collect & sort keys.
  std::vector<uint64_t> keys;
  keys.reserve(interactions_.size());
  for (const auto& [key, counts] : interactions_) {
    if (counts.clicks >= config.min_clicks) keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  const bool has_corr =
      !query_keys_.empty() && !service_keys_.empty();
  for (uint64_t key : keys) {
    const auto& counts = interactions_.at(key);
    const uint32_t q = static_cast<uint32_t>(key >> 32);
    const uint32_t s = static_cast<uint32_t>(key & 0xffffffffu);
    const float ctr = counts.impressions > 0
                          ? static_cast<float>(counts.clicks) /
                                static_cast<float>(counts.impressions)
                          : 0.0f;
    const uint8_t mask =
        has_corr ? query_keys_[q].SharedWith(service_keys_[s]) : 0;
    g.AddLink(q, s, EdgeKind::kInteraction, ctr, mask);
    linked[key] = true;
  }

  // Correlation condition: index services by each key, then link queries to
  // services sharing a key, capped per query.
  if (has_corr) {
    std::unordered_map<int64_t, std::vector<uint32_t>> by_city, by_brand,
        by_category;
    for (uint32_t s = 0; s < num_services_; ++s) {
      const CorrelationKeys& k = service_keys_[s];
      if (k.city >= 0) by_city[k.city].push_back(s);
      if (k.brand >= 0) by_brand[k.brand].push_back(s);
      if (k.category >= 0) by_category[k.category].push_back(s);
    }
    for (uint32_t q = 0; q < num_queries_; ++q) {
      const CorrelationKeys& k = query_keys_[q];
      size_t added = 0;
      auto try_bucket = [&](const std::vector<uint32_t>* bucket) {
        if (bucket == nullptr) return;
        for (uint32_t s : *bucket) {
          if (added >= config.max_correlation_degree) return;
          const uint64_t key = (static_cast<uint64_t>(q) << 32) | s;
          if (linked.count(key)) continue;
          const uint8_t mask = k.SharedWith(service_keys_[s]);
          if (mask == 0) continue;
          g.AddLink(q, s, EdgeKind::kCorrelation, 0.0f, mask);
          linked[key] = true;
          ++added;
        }
      };
      auto find = [](const auto& m, int64_t key) {
        auto it = m.find(key);
        return it == m.end() ? nullptr : &it->second;
      };
      // Brand is the most specific signal, then category, then city.
      if (k.brand >= 0) try_bucket(find(by_brand, k.brand));
      if (k.category >= 0) try_bucket(find(by_category, k.category));
      if (k.city >= 0) try_bucket(find(by_city, k.city));
    }
  }

  g.Finalize();
  return g;
}

}  // namespace garcia::graph
