#!/usr/bin/env bash
# Full check: plain Release build + ctest, then an address+undefined
# sanitizer build + ctest, then a thread-sanitizer build running the
# concurrency-sensitive suites (kernel execution layer, thread pool, the
# rewired tensor ops). The full-ctest lanes include the crash-safety
# suites: train_checkpoint_test (kill-point sweep, checkpoint container
# corruption matrix — the file-size/offset arithmetic there is exactly
# what ASan/UBSan should see) and the torn-write EmbeddingStore tests in
# serving_resilience_test. Usage: scripts/check.sh [extra ctest args].
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$ROOT" "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" "${EXTRA_CTEST_ARGS[@]}"
}

EXTRA_CTEST_ARGS=("$@")

echo "==> Plain build"
run_suite "$ROOT/build"

echo "==> Sanitizer build (address;undefined)"
run_suite "$ROOT/build-asan" -DGARCIA_SANITIZE="address;undefined"

echo "==> ASan smoke: micro_kernels --speedup_json"
# Exercises the packed GEMM (all four transpose variants) and the segment
# kernels under ASan/UBSan at bench shapes the unit tests don't reach.
# One repeat keeps it fast; output goes to the build tree.
(cd "$ROOT/build-asan/bench" && \
  GARCIA_BENCH_REPEATS=1 ./micro_kernels --speedup_json > /dev/null)

echo "==> ASan smoke: micro_kernels --fusion_json"
# The fused elementwise→reduction chain (capture, flush, spills, chain
# backward) under ASan/UBSan at bench shapes; exits nonzero if fused
# output is not bit-identical to eager.
(cd "$ROOT/build-asan/bench" && \
  GARCIA_BENCH_REPEATS=1 ./micro_kernels --fusion_json > /dev/null)

echo "==> ASan smoke: micro_kernels --pipeline_json"
# One barriered-vs-pipelined GARCIA Fit sweep under ASan/UBSan; exits
# nonzero if any pipelined run's scores diverge from the serial barriered
# reference (the DESIGN.md §5j bit-identity gate).
(cd "$ROOT/build-asan/bench" && \
  GARCIA_BENCH_REPEATS=1 ./micro_kernels --pipeline_json > /dev/null)

echo "==> ASan smoke: retrieval_recall --json"
# The IVF index under ASan/UBSan at bench shapes: k-means build, probe
# merge, the SQ8 encode/asymmetric-scan/re-rank path, and the GIV1/GIV2
# serialization arithmetic; exits nonzero if any full-probe sweep point
# diverges from the brute-force oracle or any SQ8 point diverges from
# the float index. (The iso-recall speedup gate compiles out under
# sanitizers — timing there is meaningless; exactness gates still run.)
(cd "$ROOT/build-asan/bench" && \
  GARCIA_BENCH_REPEATS=1 ./retrieval_recall --json > /dev/null)

echo "==> ASan smoke: micro_kernels --dump_dot"
# OpGraph::DumpDot over a fusion-enabled GARCIA encoder step must emit a
# well-formed digraph with at least one fused chain.
DOT_OUT="$("$ROOT/build-asan/bench/micro_kernels" --dump_dot)"
echo "$DOT_OUT" | grep -q '^digraph op_graph' || {
  echo "dump_dot smoke: missing digraph header" >&2; exit 1; }
echo "$DOT_OUT" | grep -q 'chain' || {
  echo "dump_dot smoke: no fused chain in GARCIA step graph" >&2; exit 1; }

echo "==> Sanitizer build (thread)"
# TSan and ASan are mutually exclusive, so this is a third tree. Only the
# threaded suites run here: they exercise every ShardedFor dispatch, the
# destination-sharded reduction kernels, the fused-chain kernels and their
# thread-count bit-parity contract, the block sampler's
# thread-count-invariance contract, the task-graph countdown/release races
# (core_taskgraph_test), the pipelined training loops' lookahead handoff
# (models_pipeline_test), the concurrent batched serving path
# (BatchRanker + ResilientRanker's sequenced resolve phase), and the
# shared immutable IvfIndex — float and SQ8-quantized, including the
# sharded asymmetric scan + exact re-rank — probed from many threads
# (serving_retrieval_test).
TSAN_DIR="$ROOT/build-tsan"
cmake -B "$TSAN_DIR" -S "$ROOT" -DGARCIA_SANITIZE=thread
cmake --build "$TSAN_DIR" -j "$JOBS" \
  --target core_kernels_test core_gemm_test core_threadpool_test nn_ops_test \
  nn_fusion_test graph_sampler_test core_taskgraph_test models_pipeline_test \
  serving_concurrency_test serving_resilience_test serving_retrieval_test
ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
  -R '^(core_kernels_test|core_gemm_test|core_threadpool_test|nn_ops_test|nn_fusion_test|graph_sampler_test|core_taskgraph_test|models_pipeline_test|serving_concurrency_test|serving_resilience_test|serving_retrieval_test)$'

echo "==> All checks passed"
