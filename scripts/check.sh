#!/usr/bin/env bash
# Full check: plain Release build + ctest, then an address+undefined
# sanitizer build + ctest. Usage: scripts/check.sh [extra ctest args].
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "$build_dir" -S "$ROOT" "$@"
  cmake --build "$build_dir" -j "$JOBS"
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS" "${EXTRA_CTEST_ARGS[@]}"
}

EXTRA_CTEST_ARGS=("$@")

echo "==> Plain build"
run_suite "$ROOT/build"

echo "==> Sanitizer build (address;undefined)"
run_suite "$ROOT/build-asan" -DGARCIA_SANITIZE="address;undefined"

echo "==> All checks passed"
